#include "validate/differential.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "core/evaluator.h"
#include "core/routing_engine.h"
#include "ilp/exact_solver.h"
#include "ilp/socl_ilp.h"
#include "net/topology.h"
#include "solver/mip.h"
#include "util/log.h"
#include "util/rng.h"
#include "workload/request_classes.h"

namespace socl::validate {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// a <= b up to a relative tolerance.
bool approx_le(double a, double b, double tol) {
  return a <= b + tol * std::max({1.0, std::abs(a), std::abs(b)});
}

bool approx_eq(double a, double b, double tol) {
  if (std::isinf(a) || std::isinf(b)) return a == b;
  return std::abs(a - b) <= tol * std::max({1.0, std::abs(a), std::abs(b)});
}

int structural_violations(const Report& report) {
  return report.count(Constraint::kAssignment) +
         report.count(Constraint::kDeployment) +
         report.count(Constraint::kBinarity);
}

}  // namespace

FuzzCase make_fuzz_case(std::uint64_t seed) {
  util::Rng rng(seed ^ 0xd1ffe7e57ba5e5edULL);
  FuzzCase out;

  // Sizes capped so the exact enumeration (2^nodes - 1)^|requested| stays
  // tractable (index by node count).
  static constexpr int kMaxMsByNodes[] = {0, 0, 4, 4, 4, 3, 2};
  const int nodes = static_cast<int>(rng.uniform_int(2, 6));
  const int ms_count = static_cast<int>(
      rng.uniform_int(2, kMaxMsByNodes[nodes]));

  // Catalog with varied cost / storage / compute footprints.
  std::vector<workload::Microservice> services;
  std::vector<workload::MsId> all_ms;
  for (int i = 0; i < ms_count; ++i) {
    workload::Microservice ms;
    ms.name = "m" + std::to_string(i);
    ms.deploy_cost = rng.uniform(100.0, 400.0);
    ms.storage = rng.uniform(0.5, 2.5);
    ms.compute_gflop = rng.uniform(0.5, 3.0);
    services.push_back(ms);
    all_ms.push_back(i);
  }
  out.catalog = std::make_unique<workload::AppCatalog>(
      "fuzz", std::move(services),
      std::vector<workload::ChainTemplate>{{"all", all_ms, 1.0}});

  // Substrate: mostly the paper's geometric generator with a storage
  // tightness knob; sometimes a hand-built line substrate, possibly split
  // into two disconnected components.
  const double storage_scale = rng.uniform(0.6, 1.6);
  const int topo_pick = static_cast<int>(rng.uniform_int(0, 9));
  bool disconnected = false;
  net::EdgeNetwork network;
  if (topo_pick < 7) {
    net::TopologyConfig topo;
    topo.num_nodes = nodes;
    topo.k_nearest = static_cast<int>(rng.uniform_int(1, 3));
    topo.storage_min_units = 2.0 * storage_scale;
    topo.storage_max_units = 5.0 * storage_scale;
    network = net::make_topology(topo, rng());
  } else {
    disconnected = topo_pick == 9;
    for (int k = 0; k < nodes; ++k) {
      net::EdgeNode node;
      node.compute_gflops = rng.uniform(5.0, 20.0);
      node.storage_units = rng.uniform(2.0, 5.0) * storage_scale;
      network.add_node(node);
    }
    // Line within each component; a connected build is one component.
    const int split =
        disconnected ? static_cast<int>(rng.uniform_int(1, nodes - 1))
                     : nodes;
    for (int k = 0; k + 1 < nodes; ++k) {
      if (k + 1 == split) continue;  // the (only) missing bridge
      network.add_link_with_rate(k, k + 1, rng.uniform(10.0, 60.0));
    }
  }

  // Requests drawn directly (not via the request generator) so chains can
  // repeat microservices and deadlines span loose-to-binding regimes.
  const int users = static_cast<int>(rng.uniform_int(2, 6));
  std::vector<workload::UserRequest> requests;
  for (int h = 0; h < users; ++h) {
    workload::UserRequest request;
    request.id = h;
    request.attach_node =
        static_cast<net::NodeId>(rng.uniform_int(0, nodes - 1));
    const int len =
        static_cast<int>(rng.uniform_int(1, std::min(4, ms_count + 1)));
    for (int pos = 0; pos < len; ++pos) {
      request.chain.push_back(
          static_cast<workload::MsId>(rng.uniform_int(0, ms_count - 1)));
    }
    if (len >= 2 && rng.uniform() < 0.3) {
      request.chain.back() = request.chain.front();  // forced repeat
    }
    for (int e = 0; e + 1 < len; ++e) {
      request.edge_data.push_back(rng.uniform(1.0, 40.0));
    }
    request.data_in = rng.uniform(1.0, 20.0);
    request.data_out = rng.uniform(1.0, 20.0);
    const double regime = rng.uniform();
    request.deadline = regime < 0.25   ? rng.uniform(0.5, 3.0)
                       : regime < 0.6 ? rng.uniform(3.0, 15.0)
                                      : 1e9;
    requests.push_back(std::move(request));
  }

  core::ProblemConstants constants;
  const double lambda_pick = rng.uniform();
  constants.lambda = lambda_pick < 0.33 ? 0.2 : lambda_pick < 0.66 ? 0.5
                                                                   : 0.8;
  constants.budget =
      out.catalog->total_single_instance_cost() * rng.uniform(0.7, 2.5);

  std::ostringstream desc;
  desc << nodes << " nodes "
       << (topo_pick < 7 ? "geometric" : disconnected ? "disconnected-line"
                                                      : "line")
       << ", " << ms_count << " ms, " << users << " users, lambda="
       << constants.lambda << ", budget=" << constants.budget
       << ", storage_scale=" << storage_scale;
  out.description = desc.str();

  out.scenario = std::make_unique<core::Scenario>(
      std::move(network), *out.catalog, std::move(requests), constants);
  return out;
}

CaseResult run_differential_case(std::uint64_t seed,
                                 const FuzzOptions& options) {
  const FuzzCase fuzz_case = make_fuzz_case(seed);
  const core::Scenario& scenario = *fuzz_case.scenario;
  const double tol = options.tolerance;

  CaseResult result;
  result.seed = seed;
  result.description = fuzz_case.description;
  auto fail = [&result](const std::string& message) {
    result.agreed = false;
    if (!result.diagnosis.empty()) result.diagnosis += "\n";
    result.diagnosis += message;
  };

  const SolutionValidator validator(scenario);
  const core::Evaluator evaluator(scenario);

  // --- Leg 1: the heuristic's own solution must validate, and the
  // validator's independent recomputation must agree with Evaluation.
  const core::Solution socl = core::SoCL().solve(scenario);
  const core::Evaluation& eval = socl.evaluation;
  result.heuristic_objective = eval.objective;
  if (socl.assignment.has_value()) {
    const Report report =
        validator.validate(socl.placement, *socl.assignment);
    if (eval.routable) {
      if (structural_violations(report) > 0) {
        fail("heuristic solution has structural violations: " +
             report.summary());
      }
      if (report.count(Constraint::kDeadline) != eval.deadline_violations) {
        fail("deadline-violation count disagrees: validator " +
             std::to_string(report.count(Constraint::kDeadline)) +
             " vs evaluator " + std::to_string(eval.deadline_violations));
      }
      if ((report.count(Constraint::kBudget) > 0) == eval.within_budget) {
        fail("budget verdict disagrees with Evaluation.within_budget");
      }
      if ((report.count(Constraint::kStorage) > 0) == eval.storage_ok) {
        fail("storage verdict disagrees with Evaluation.storage_ok");
      }
      if (!approx_eq(report.total_latency, eval.total_latency, tol)) {
        fail("recomputed total latency " +
             std::to_string(report.total_latency) + " != evaluator " +
             std::to_string(eval.total_latency));
      }
      if (!approx_eq(report.objective, eval.objective, tol)) {
        fail("recomputed objective " + std::to_string(report.objective) +
             " != evaluator " + std::to_string(eval.objective));
      }
    } else if (structural_violations(report) == 0 &&
               std::isfinite(report.total_latency)) {
      fail("evaluator says unroutable but the validator finds a clean, "
           "finite solution");
    }
  } else {
    if (eval.routable) {
      fail("router returned no assignment but Evaluation claims routable");
    }
    const Report report = validator.validate_placement(socl.placement);
    if (report.count(Constraint::kBinarity) > 0) {
      fail("heuristic placement bookkeeping broken: " + report.summary());
    }
  }

  // --- Aggregation lane (DESIGN.md §4g): replicate the workload so every
  // request class has several members, then solve once with request-class
  // aggregation and once on the per-user path. The two modes totalise
  // class-major and route identical representatives, so placement,
  // objective, assignment, and the validator's violation set must all be
  // IDENTICAL — bit-for-bit, not within tolerance.
  {
    util::Rng lane_rng(seed ^ 0xa66c1a55e5ULL);
    const int replication = static_cast<int>(lane_rng.uniform_int(2, 4));
    auto replicated = workload::replicate_requests(
        scenario.requests(), scenario.num_users() * replication);
    const core::Scenario agg_scenario(scenario.network(), scenario.catalog(),
                                      std::move(replicated),
                                      scenario.constants());
    if (agg_scenario.classes().num_classes() > scenario.num_users()) {
      fail("replicated workload produced more classes than template users");
    }
    core::SoCLParams per_user_params;
    per_user_params.combination.aggregate_requests = false;
    const core::Solution by_class = core::SoCL().solve(agg_scenario);
    const core::Solution by_user =
        core::SoCL(per_user_params).solve(agg_scenario);
    if (!(by_class.placement == by_user.placement)) {
      fail("aggregated and per-user solves diverged in placement");
    }
    const core::Evaluation& ec = by_class.evaluation;
    const core::Evaluation& eu = by_user.evaluation;
    if (ec.objective != eu.objective ||
        ec.total_latency != eu.total_latency ||
        ec.deployment_cost != eu.deployment_cost ||
        ec.deadline_violations != eu.deadline_violations ||
        ec.routable != eu.routable) {
      fail("aggregated objective " + std::to_string(ec.objective) +
           " not bit-identical to per-user " + std::to_string(eu.objective));
    }
    if (by_class.assignment.has_value() != by_user.assignment.has_value()) {
      fail("aggregated and per-user solves diverged in routability");
    }
    if (by_class.assignment.has_value() && by_user.assignment.has_value()) {
      for (int h = 0; h < agg_scenario.num_users(); ++h) {
        if (!std::ranges::equal(by_class.assignment->user_route(h),
                                by_user.assignment->user_route(h))) {
          fail("assignment for user " + std::to_string(h) +
               " differs between aggregated and per-user solves");
          break;
        }
      }
      const SolutionValidator agg_validator(agg_scenario);
      const Report rc =
          agg_validator.validate(by_class.placement, *by_class.assignment);
      const Report ru =
          agg_validator.validate(by_user.placement, *by_user.assignment);
      bool same = rc.violations.size() == ru.violations.size() &&
                  rc.total_latency == ru.total_latency &&
                  rc.objective == ru.objective;
      for (std::size_t i = 0; same && i < rc.violations.size(); ++i) {
        const Violation& a = rc.violations[i];
        const Violation& b = ru.violations[i];
        same = a.constraint == b.constraint && a.user == b.user &&
               a.node == b.node && a.microservice == b.microservice &&
               a.position == b.position && a.lhs == b.lhs && a.rhs == b.rhs;
      }
      if (!same) {
        fail("validator reports differ between aggregated and per-user "
             "solves:\n  aggregated: " + rc.summary() +
             "\n  per-user: " + ru.summary());
      }
    }
  }

  // --- Leg 2: exact branch-and-bound with deadline/storage relaxed — a
  // lower bound over every budget-feasible placement.
  ilp::ExactOptions relaxed;
  relaxed.enforce_deadlines = false;
  relaxed.enforce_storage = false;
  relaxed.time_limit_s = options.exact_time_limit_s;
  const auto exact = ilp::solve_exact(scenario, relaxed);
  result.exact_objective = exact.objective;
  if (exact.timed_out) {
    result.exact_skipped = true;
    return result;
  }
  if (exact.found) {
    if (exact.status != ilp::ExactStatus::kOptimal) {
      fail("exact completed with a solution but status is not kOptimal");
    }
    const auto routed = evaluator.router().route_all(exact.placement);
    if (!routed.has_value()) {
      fail("exact optimum cannot be routed by the router");
    } else {
      const Report report = validator.validate(exact.placement, *routed);
      if (structural_violations(report) > 0 ||
          report.count(Constraint::kBudget) > 0) {
        fail("exact optimum violates constraints: " + report.summary());
      }
      if (!approx_eq(report.objective, exact.objective, tol)) {
        fail("validator recomputes the exact optimum as " +
             std::to_string(report.objective) + ", solver reported " +
             std::to_string(exact.objective));
      }
    }
    if (eval.routable && eval.within_budget &&
        std::isfinite(eval.objective) &&
        !approx_le(exact.objective, eval.objective, tol)) {
      fail("heuristic objective " + std::to_string(eval.objective) +
           " beats the exact lower bound " +
           std::to_string(exact.objective));
    }
  } else {
    if (exact.status != ilp::ExactStatus::kInfeasible) {
      fail("exact found nothing without timing out but is not kInfeasible");
    }
    if (!std::isinf(exact.objective)) {
      fail("infeasible exact objective sentinel is not +inf");
    }
    if (eval.routable && eval.within_budget) {
      fail("exact proved infeasibility but the heuristic returned a "
           "budget-feasible routable solution");
    }
  }

  // --- Leg 3: the MIP model. Skipped on disconnected substrates, whose
  // linearised delay coefficients are not finite.
  if (!options.run_mip || !exact.found || !scenario.network().connected()) {
    return result;
  }
  result.mip_checked = true;

  ilp::IlpBuildOptions build_options;
  build_options.deadline_rows = false;  // match the relaxed exact space
  const ilp::SoclIlp built = ilp::build_socl_ilp(scenario, build_options);
  solver::MipOptions mip_options;
  mip_options.time_limit_s = options.mip_time_limit_s;
  const auto mip = solver::solve_mip(built.model, mip_options);

  ilp::ExactOptions strict = relaxed;
  strict.enforce_storage = true;  // the space the MIP's storage rows encode
  const auto exact_storage = ilp::solve_exact(scenario, strict);

  if (mip.has_solution()) {
    const auto decoded = ilp::decode_placement(scenario, built, mip.x);
    const Report report = validator.validate_placement(decoded);
    if (report.count(Constraint::kBudget) > 0) {
      fail("MIP solution violates the budget row it encodes");
    }
    if (report.count(Constraint::kStorage) > 0) {
      fail("MIP solution violates a storage row it encodes");
    }
    const auto decoded_eval = evaluator.evaluate(decoded);
    if (!decoded_eval.routable) {
      // The covering rows force an instance of every requested
      // microservice, so on a connected substrate this is an encoding bug.
      fail("MIP produced a placement the router cannot route");
    } else {
      if (!approx_le(exact.objective, decoded_eval.objective, tol)) {
        fail("MIP-decoded placement beats the relaxed exact optimum");
      }
      if (exact_storage.found && !exact_storage.timed_out &&
          !approx_le(exact_storage.objective, decoded_eval.objective, tol)) {
        fail("MIP-decoded placement beats the exact optimum over the same "
             "storage-feasible space");
      }
    }
  }
  if (exact_storage.found && !exact_storage.timed_out) {
    // "exact ≡ MIP within tolerance" on the shared linearised model: the
    // exact optimum must encode to a model-feasible point whose model
    // objective respects the MIP dual bound.
    const auto warm =
        ilp::encode_warm_start(scenario, built, exact_storage.placement);
    if (!built.model.feasible(warm)) {
      fail("exact optimum is infeasible in the MIP model "
           "(row encoding disagreement)");
    } else if (mip.has_solution() &&
               !approx_le(mip.bound, built.model.objective_value(warm),
                          tol)) {
      fail("MIP dual bound exceeds the exact optimum's model objective");
    }
  }
  return result;
}

FuzzSummary run_differential_fuzz(const FuzzOptions& options) {
  FuzzSummary summary;
  for (int i = 0; i < options.cases; ++i) {
    const std::uint64_t seed = options.base_seed + static_cast<std::uint64_t>(i);
    CaseResult result = run_differential_case(seed, options);
    ++summary.cases_run;
    if (result.exact_skipped) ++summary.exact_skipped;
    if (result.mip_checked) ++summary.mip_checked;
    if (!result.exact_skipped && std::isinf(result.exact_objective)) {
      ++summary.exact_infeasible;
    }
    if (std::isinf(result.heuristic_objective)) {
      ++summary.heuristic_unroutable;
    }
    if (options.verbose) {
      util::log_info("fuzz seed ", seed, ": ",
                     result.agreed ? "agreed" : "DISAGREED", " (",
                     result.description, ")");
    }
    if (!result.agreed) {
      ++summary.disagreements;
      summary.failures.push_back(std::move(result));
    }
  }
  return summary;
}

CaseResult run_kernel_differential_case(std::uint64_t seed,
                                        const FuzzOptions& options) {
  FuzzCase fuzz_case = make_fuzz_case(seed);
  core::Scenario& scenario = *fuzz_case.scenario;
  if (options.verbose) {
    util::log_info("kernel fuzz seed ", seed, ": ", fuzz_case.description);
  }

  CaseResult result;
  result.seed = seed;
  result.description = fuzz_case.description;
  auto fail = [&result](const std::string& message) {
    result.agreed = false;
    if (!result.diagnosis.empty()) result.diagnosis += "\n";
    result.diagnosis += message;
  };

  // --- Solver leg: one full SoCL solve per scoring path. The kernel is a
  // drop-in replacement for the legacy DP, so everything downstream of the
  // scores — placement, evaluation, assignment, and the scoring-path-
  // independent counters — must be IDENTICAL, bit-for-bit.
  core::SoCLParams legacy_params;
  legacy_params.combination.use_score_kernel = false;
  const core::Solution by_kernel = core::SoCL().solve(scenario);
  const core::Solution by_legacy = core::SoCL(legacy_params).solve(scenario);
  result.heuristic_objective = by_kernel.evaluation.objective;
  if (!(by_kernel.placement == by_legacy.placement)) {
    fail("kernel and legacy solves diverged in placement");
  }
  const core::Evaluation& ek = by_kernel.evaluation;
  const core::Evaluation& el = by_legacy.evaluation;
  if (ek.objective != el.objective || ek.total_latency != el.total_latency ||
      ek.deployment_cost != el.deployment_cost ||
      ek.max_latency != el.max_latency ||
      ek.deadline_violations != el.deadline_violations ||
      ek.routable != el.routable) {
    fail("kernel objective " + std::to_string(ek.objective) +
         " not bit-identical to legacy " + std::to_string(el.objective));
  }
  if (by_kernel.assignment.has_value() != by_legacy.assignment.has_value()) {
    fail("kernel and legacy solves diverged in routability");
  }
  if (by_kernel.assignment.has_value() && by_legacy.assignment.has_value()) {
    for (int h = 0; h < scenario.num_users(); ++h) {
      if (!std::ranges::equal(by_kernel.assignment->user_route(h),
                              by_legacy.assignment->user_route(h))) {
        fail("assignment for user " + std::to_string(h) +
             " differs between kernel and legacy solves");
        break;
      }
    }
  }
  // The counters below count scoring EVENTS, not scoring mechanics, so they
  // are a pure function of the solver's decision sequence — any drift means
  // the two paths disagreed somewhere even if the final objective matched.
  const core::RoutingCounters& ck = by_kernel.combination_stats.routing;
  const core::RoutingCounters& cl = by_legacy.combination_stats.routing;
  if (ck.routes_computed != cl.routes_computed ||
      ck.cache_hits != cl.cache_hits ||
      ck.reroutes_avoided != cl.reroutes_avoided ||
      ck.candidates_scored != cl.candidates_scored ||
      ck.cache_refreshes != cl.cache_refreshes) {
    fail("routing counters diverged: kernel routed " +
         std::to_string(ck.routes_computed) + ", legacy " +
         std::to_string(cl.routes_computed));
  }

  // --- Engine leg: compare the scoring surface directly on a dense
  // placement (every node hosts every service — the widest layers, and
  // routable whenever anything is), then mutate the workload by truncating
  // every multi-hop chain and compare again. The mutation shrinks layer
  // counts and lane widths underneath warmed arenas/scratches, so a stale
  // SoA tail or dp buffer on either path shows up as a bitwise mismatch.
  core::Placement dense(scenario);
  for (workload::MsId m = 0; m < scenario.num_microservices(); ++m) {
    for (net::NodeId k = 0; k < scenario.num_nodes(); ++k) dense.deploy(m, k);
  }
  core::RoutingEngine kernel_engine(scenario, 1, false, true, true);
  core::RoutingEngine legacy_engine(scenario, 1, false, true, false);
  const auto compare_engines = [&](const char* when) {
    kernel_engine.refresh(dense);
    legacy_engine.refresh(dense);
    if (kernel_engine.cached_latency_sum() !=
        legacy_engine.cached_latency_sum()) {
      fail(std::string(when) + ": cached latency sum diverged: kernel " +
           std::to_string(kernel_engine.cached_latency_sum()) + " vs legacy " +
           std::to_string(legacy_engine.cached_latency_sum()));
    }
    const double fk = kernel_engine.full_objective(dense);
    const double fl = legacy_engine.full_objective(dense);
    if (fk != fl) {
      fail(std::string(when) + ": full objective diverged: kernel " +
           std::to_string(fk) + " vs legacy " + std::to_string(fl));
    }
    for (workload::MsId m = 0; m < scenario.num_microservices(); ++m) {
      const double ok = kernel_engine.objective_with_change(dense, m);
      const double ol = legacy_engine.objective_with_change(dense, m);
      if (ok != ol) {
        fail(std::string(when) + ": rescore of service " + std::to_string(m) +
             " diverged: kernel " + std::to_string(ok) + " vs legacy " +
             std::to_string(ol));
        break;
      }
    }
    if (kernel_engine.any_deadline_violation(dense) !=
        legacy_engine.any_deadline_violation(dense)) {
      fail(std::string(when) + ": deadline verdict diverged");
    }
  };
  compare_engines("dense");

  std::vector<workload::UserRequest> shrunk = scenario.requests();
  bool mutated = false;
  for (auto& request : shrunk) {
    if (request.chain.size() > 1) {
      request.chain.pop_back();
      request.edge_data.pop_back();
      mutated = true;
    }
  }
  if (mutated) {
    scenario.set_requests(std::move(shrunk));
    compare_engines("after chain shrink");
  }
  return result;
}

FuzzSummary run_kernel_differential_fuzz(const FuzzOptions& options) {
  FuzzSummary summary;
  for (int i = 0; i < options.cases; ++i) {
    const std::uint64_t seed =
        options.base_seed + static_cast<std::uint64_t>(i);
    CaseResult result = run_kernel_differential_case(seed, options);
    ++summary.cases_run;
    if (std::isinf(result.heuristic_objective)) {
      ++summary.heuristic_unroutable;
    }
    if (options.verbose) {
      util::log_info("kernel fuzz seed ", seed, ": ",
                     result.agreed ? "agreed" : "DISAGREED", " (",
                     result.description, ")");
    }
    if (!result.agreed) {
      ++summary.disagreements;
      summary.failures.push_back(std::move(result));
    }
  }
  return summary;
}

std::string FuzzSummary::summary() const {
  std::ostringstream out;
  out << cases_run << " cases, " << disagreements << " disagreement(s), "
      << exact_skipped << " exact-timeout skip(s), " << mip_checked
      << " MIP-checked, " << exact_infeasible << " proven-infeasible, "
      << heuristic_unroutable << " heuristic-unroutable";
  for (const auto& failure : failures) {
    out << "\nseed " << failure.seed << " (" << failure.description
        << "): reproduce with `fuzz_differential --seed " << failure.seed
        << " --verbose`\n  " << failure.diagnosis;
  }
  return out.str();
}

}  // namespace socl::validate
