// Differential fuzzing of the solver stack (DESIGN.md §4f).
//
// Generates hundreds of seeded tiny scenarios (≤6 nodes, ≤5 microservices,
// varied λ / budget / storage tightness, disconnected substrates, chains
// with repeated microservices), runs the SoCL heuristic, the exact
// branch-and-bound, and the MIP model on each, audits every returned
// solution with SolutionValidator, and checks the cross-solver invariants:
//
//   * validator verdicts agree with Evaluation flags bit-for-bit
//     (deadline-violation count, budget, storage, routability) and the
//     independently recomputed Σ D_h / objective match to tolerance;
//   * a replicated workload solved with and without request-class
//     aggregation (DESIGN.md §4g) yields identical placements, objectives,
//     assignments, and validator violation sets — bit-for-bit;
//   * heuristic objective >= exact optimum (the exact solver is a lower
//     bound over the same budget-feasible space);
//   * exact-infeasible implies the heuristic cannot produce a validated
//     budget-feasible routable solution;
//   * the MIP-decoded placement satisfies the encoded constraint rows and
//     cannot beat the exact optimum over the same (storage-feasible) space;
//   * the exact optimum, encoded as a warm start, is MIP-model-feasible and
//     its model objective respects the MIP dual bound ("exact ≡ MIP within
//     tolerance" on the shared linearised model).
//
// Everything is deterministic in the seed: a CI failure prints the seed and
// `fuzz_differential --seed N --verbose` reproduces it exactly
// (EXPERIMENTS.md "Reproducing a fuzz failure").
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "validate/validator.h"

namespace socl::validate {

/// One generated instance. Owns its catalog (the Scenario only borrows it).
struct FuzzCase {
  std::unique_ptr<workload::AppCatalog> catalog;
  std::unique_ptr<core::Scenario> scenario;
  /// Human-readable shape, e.g. "4 nodes geometric, 3 ms, 5 users, ...".
  std::string description;
};

/// Deterministically builds the instance for `seed`.
FuzzCase make_fuzz_case(std::uint64_t seed);

struct FuzzOptions {
  int cases = 200;
  std::uint64_t base_seed = 1;
  /// Also cross-check the MIP model (skipped on disconnected substrates,
  /// whose linearised coefficients are not finite).
  bool run_mip = true;
  double exact_time_limit_s = 10.0;
  double mip_time_limit_s = 10.0;
  /// Relative tolerance for objective comparisons.
  double tolerance = 1e-6;
  bool verbose = false;
};

/// Outcome of one seed.
struct CaseResult {
  std::uint64_t seed = 0;
  std::string description;
  bool agreed = true;
  /// The exact solver timed out, so the cross-solver legs have no verdict
  /// (the heuristic self-consistency checks still ran).
  bool exact_skipped = false;
  bool mip_checked = false;
  /// Diagnosis of every failed invariant, one line each; empty when agreed.
  std::string diagnosis;

  double heuristic_objective = 0.0;
  double exact_objective = 0.0;
};

/// Runs the full differential check for one seed.
CaseResult run_differential_case(std::uint64_t seed,
                                 const FuzzOptions& options);

struct FuzzSummary {
  int cases_run = 0;
  int disagreements = 0;
  int exact_skipped = 0;
  int mip_checked = 0;
  int exact_infeasible = 0;
  int heuristic_unroutable = 0;
  /// Every disagreeing case, with its seed and diagnosis.
  std::vector<CaseResult> failures;

  bool ok() const { return disagreements == 0; }
  std::string summary() const;
};

/// Runs seeds base_seed .. base_seed + cases - 1.
FuzzSummary run_differential_fuzz(const FuzzOptions& options);

/// Kernel lane (DESIGN.md §4h): solves the seed's instance once through the
/// SoA scoring kernel and once through the legacy ChainRouter path and
/// requires bit-identical placements, evaluation fields, assignments, and
/// shared routing-counter totals; then stresses the engines directly —
/// dense-placement refresh/full-objective/per-service rescore comparisons,
/// followed by a chain-shrinking set_requests mutation (stale SoA and
/// scratch tails) and a re-comparison. Everything is compared bitwise, not
/// within tolerance.
CaseResult run_kernel_differential_case(std::uint64_t seed,
                                        const FuzzOptions& options);

/// Kernel lane over seeds base_seed .. base_seed + cases - 1 (exact/MIP
/// summary fields stay zero — this lane never runs those solvers).
FuzzSummary run_kernel_differential_fuzz(const FuzzOptions& options);

}  // namespace socl::validate
