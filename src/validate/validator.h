// Independent constraint validator (DESIGN.md §4f).
//
// Every solver in the repo — the SoCL heuristic, the exact branch-and-bound,
// the MIP — is scored by Evaluator/ChainRouter. A bug in that shared scoring
// path is therefore invisible to cross-checks between them. SolutionValidator
// closes the loop: given a Scenario + Placement + Assignment it recomputes
// D_h from first principles (Eq. 2: d_in + per-hop q(m_i)/c(v_k) +
// virtual-link transfers + d_out) using only `net::` primitives — it builds
// its own min-hop tables from the raw network and shares no code with
// ChainRouter or Evaluator — and audits the constraint system:
//
//   Eq. (4)  per-user deadline       D_h <= D_h^max
//   Eq. (5)  provisioning budget     Σ κ(m_i)·x(i,k) <= K^max
//   Eq. (6)  per-node storage        Σ φ(m_i)·x(i,k) <= Φ(v_k)
//   Eq. (9)  single assignment       Σ_k y(h,pos,k) == 1
//   Eq. (10) assignment ⇒ deployment y(h,pos,k) <= x(i,k)
//   Eq. (11) binarity                x, y ∈ {0,1} (id-range + bookkeeping)
//
// Violations come back as structured records (constraint id, witness user /
// node / microservice, lhs/rhs/slack) so a differential-fuzz failure names
// the broken equation instead of a wrong number in a benchmark table.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/socl.h"
#include "net/shortest_path.h"
#include "net/virtual_link.h"

namespace socl::validate {

/// Constraint taxonomy, one id per checked equation of Section III.
enum class Constraint {
  kDeadline,    ///< Eq. (4): completion time within D_h^max
  kBudget,      ///< Eq. (5): deployment cost within K^max
  kStorage,     ///< Eq. (6): per-node storage within Φ(v_k)
  kAssignment,  ///< Eq. (9): every chain position assigned exactly one node
  kDeployment,  ///< Eq. (10): assigned node hosts the microservice
  kBinarity,    ///< Eq. (11): decision variables binary / bookkeeping sound
};

/// Stable short name, e.g. "eq4.deadline" (used in logs and test matchers).
const char* constraint_name(Constraint constraint);

/// One constraint violation with its witness and the failing inequality.
struct Violation {
  Constraint constraint;
  /// Witness indices; -1 / kInvalidNode / kInvalidMs when not applicable.
  int user = -1;
  net::NodeId node = net::kInvalidNode;
  workload::MsId microservice = workload::kInvalidMs;
  int position = -1;  ///< chain position for Eq. (9)/(10) violations
  /// The failed inequality lhs <= rhs; slack() < 0 quantifies the breach.
  double lhs = 0.0;
  double rhs = 0.0;
  double slack() const { return rhs - lhs; }

  /// One-line human-readable description naming the equation and witness.
  std::string describe() const;
};

/// Result of one validation pass, plus the independently recomputed
/// quantities a differential harness compares against Evaluation.
struct Report {
  std::vector<Violation> violations;
  /// Recomputed per-user D_h (Eq. 2); +inf marks an unreachable hop.
  std::vector<double> user_latency;
  /// Σ_h D_h over all users (+inf if any hop is unreachable).
  double total_latency = 0.0;
  /// Recomputed Σ κ(m_i)·x(i,k).
  double deployment_cost = 0.0;
  /// Recomputed λ·cost + (1-λ)·w·Σ D_h (Eq. 3).
  double objective = 0.0;
  int users_checked = 0;
  /// D_h evaluations served from the request-class memo instead of a fresh
  /// Eq. (2) walk (members routed identically to their representative).
  int latency_memo_hits = 0;

  bool ok() const { return violations.empty(); }
  /// Count of violations of one constraint id.
  int count(Constraint constraint) const;
  /// Multi-line summary ("OK" or one line per violation).
  std::string summary() const;
};

/// Recomputes everything from the raw substrate network: the constructor
/// runs its own BFS min-hop pass and derives its own virtual-link rates, so
/// it cross-checks the Scenario caches as well as the routing code.
class SolutionValidator {
 public:
  explicit SolutionValidator(const core::Scenario& scenario);

  /// Full audit: Eqs. (4)-(6) and (9)-(11) against placement + assignment.
  Report validate(const core::Placement& placement,
                  const core::Assignment& assignment) const;

  /// Placement-only audit: Eqs. (5), (6) and the x-side of (11). Used for
  /// solutions that never produced a routable assignment.
  Report validate_placement(const core::Placement& placement) const;

  /// Independent D_h (Eq. 2) for one user's fixed route; +inf when a hop
  /// crosses a disconnected component.
  double completion_time(const workload::UserRequest& request,
                         std::span<const net::NodeId> route) const;

 private:
  void check_placement(const core::Placement& placement, Report& report) const;

  const core::Scenario* scenario_;
  net::ShortestPaths paths_;   ///< own BFS tables, not the scenario's
  net::VirtualLinks vlinks_;   ///< own harmonic-mean rates
};

/// Wires the validator into `SoCL::solve` as the post-solve debug hook
/// (SoCLParams::post_solve_hook): every solve is re-audited, the
/// `socl.validate.*` counters of docs/METRICS.md are emitted through the
/// pipeline's ObsSink, and violations are logged at Warn level when
/// `log_violations` is set. Opt-in — production solves pay nothing.
void install_validation(core::SoCLParams& params, bool log_violations = true);

}  // namespace socl::validate
