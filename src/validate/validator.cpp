#include "validate/validator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "obs/sink.h"
#include "util/log.h"

namespace socl::validate {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Feasibility tolerance; matches the 1e-9 the Evaluator applies to the
/// budget/deadline checks so validator and evaluator verdicts can be
/// compared bit-for-bit by the differential harness.
constexpr double kTol = 1e-9;

}  // namespace

const char* constraint_name(Constraint constraint) {
  switch (constraint) {
    case Constraint::kDeadline: return "eq4.deadline";
    case Constraint::kBudget: return "eq5.budget";
    case Constraint::kStorage: return "eq6.storage";
    case Constraint::kAssignment: return "eq9.assignment";
    case Constraint::kDeployment: return "eq10.deployment";
    case Constraint::kBinarity: return "eq11.binarity";
  }
  return "unknown";
}

std::string Violation::describe() const {
  std::ostringstream out;
  out << constraint_name(constraint);
  if (user >= 0) out << " user=" << user;
  if (position >= 0) out << " pos=" << position;
  if (node != net::kInvalidNode) out << " node=v" << node;
  if (microservice != workload::kInvalidMs) out << " ms=m" << microservice;
  out << " lhs=" << lhs << " rhs=" << rhs << " slack=" << slack();
  return out.str();
}

int Report::count(Constraint constraint) const {
  int n = 0;
  for (const auto& violation : violations) {
    if (violation.constraint == constraint) ++n;
  }
  return n;
}

std::string Report::summary() const {
  if (ok()) return "OK: 0 violations";
  std::ostringstream out;
  out << violations.size() << " violation(s):";
  for (const auto& violation : violations) {
    out << "\n  " << violation.describe();
  }
  return out.str();
}

SolutionValidator::SolutionValidator(const core::Scenario& scenario)
    : scenario_(&scenario),
      paths_(scenario.network()),
      vlinks_(scenario.network(), paths_) {}

double SolutionValidator::completion_time(
    const workload::UserRequest& request,
    std::span<const net::NodeId> route) const {
  if (route.size() != request.chain.size() || route.empty()) return kInf;
  const auto& network = scenario_->network();
  const auto& catalog = scenario_->catalog();
  // d_in: upload payload from the attach node to the first serving node.
  double total =
      vlinks_.transfer_time(request.data_in, request.attach_node,
                            route.front());
  for (std::size_t pos = 0; pos < route.size(); ++pos) {
    // Per-hop transmission-computation cycle q(m_i)/c(v_k).
    total += catalog.microservice(request.chain[pos]).compute_gflop /
             network.node(route[pos]).compute_gflops;
    if (pos > 0) {
      total += vlinks_.transfer_time(request.edge_data[pos - 1],
                                     route[pos - 1], route[pos]);
    }
  }
  // d_out: return payload back to the node serving the first microservice.
  total += vlinks_.transfer_time(request.data_out, route.back(),
                                 route.front());
  return total;
}

void SolutionValidator::check_placement(const core::Placement& placement,
                                        Report& report) const {
  const auto& catalog = scenario_->catalog();
  const auto& network = scenario_->network();
  const auto& constants = scenario_->constants();

  // Eq. (11), x side: the matrix stores 0/1 by construction, so the
  // meaningful binarity check is that the instance-count bookkeeping agrees
  // with the cells (a desync would silently corrupt cost and routing).
  double cost = 0.0;
  for (workload::MsId m = 0; m < placement.num_microservices(); ++m) {
    int cells = 0;
    for (net::NodeId k = 0; k < placement.num_nodes(); ++k) {
      if (placement.deployed(m, k)) ++cells;
    }
    if (cells != placement.instance_count(m)) {
      report.violations.push_back({Constraint::kBinarity, -1,
                                   net::kInvalidNode, m, -1,
                                   static_cast<double>(cells),
                                   static_cast<double>(
                                       placement.instance_count(m))});
    }
    cost += catalog.microservice(m).deploy_cost * static_cast<double>(cells);
  }
  report.deployment_cost = cost;

  // Eq. (5): global provisioning budget.
  if (cost > constants.budget + kTol) {
    report.violations.push_back({Constraint::kBudget, -1, net::kInvalidNode,
                                 workload::kInvalidMs, -1, cost,
                                 constants.budget});
  }

  // Eq. (6): per-node storage capacity.
  for (net::NodeId k = 0; k < placement.num_nodes(); ++k) {
    double used = 0.0;
    for (workload::MsId m = 0; m < placement.num_microservices(); ++m) {
      if (placement.deployed(m, k)) used += catalog.microservice(m).storage;
    }
    const double capacity = network.node(k).storage_units;
    if (used > capacity + kTol) {
      report.violations.push_back({Constraint::kStorage, -1, k,
                                   workload::kInvalidMs, -1, used, capacity});
    }
  }
}

Report SolutionValidator::validate_placement(
    const core::Placement& placement) const {
  Report report;
  check_placement(placement, report);
  report.total_latency = kInf;
  report.objective = kInf;
  return report;
}

Report SolutionValidator::validate(const core::Placement& placement,
                                   const core::Assignment& assignment) const {
  Report report;
  check_placement(placement, report);

  const auto& requests = scenario_->requests();
  const auto& classes = scenario_->classes();
  const int nodes = scenario_->num_nodes();
  report.user_latency.assign(requests.size(), kInf);
  // Request-class memo (DESIGN.md §4g): members routed identically to their
  // representative share one Eq. (2) walk, and their latency enters the
  // total class-major (weight · D_c, one rounding per class) — matching the
  // evaluator's totalisation. Members the solver routed differently fall
  // back to a fresh walk and per-user accumulation.
  std::vector<double> class_d(
      static_cast<std::size_t>(classes.num_classes()), kInf);
  std::vector<double> class_uniform_weight(
      static_cast<std::size_t>(classes.num_classes()), 0.0);
  std::vector<bool> class_d_known(
      static_cast<std::size_t>(classes.num_classes()), false);
  double total = 0.0;
  bool malformed = false;
  for (const auto& request : requests) {
    ++report.users_checked;
    const auto route = assignment.user_route(request.id);
    bool structurally_ok = route.size() == request.chain.size();
    if (!structurally_ok) {
      report.violations.push_back(
          {Constraint::kAssignment, request.id, net::kInvalidNode,
           workload::kInvalidMs, -1, static_cast<double>(route.size()),
           static_cast<double>(request.chain.size())});
    }
    const std::size_t len = std::min(route.size(), request.chain.size());
    for (std::size_t pos = 0; pos < len; ++pos) {
      const net::NodeId k = route[pos];
      const workload::MsId m = request.chain[pos];
      if (k == net::kInvalidNode) {
        // Eq. (9): Σ_k y(h,pos,k) == 1 — this position has no server.
        report.violations.push_back({Constraint::kAssignment, request.id,
                                     net::kInvalidNode, m,
                                     static_cast<int>(pos), 0.0, 1.0});
        structurally_ok = false;
      } else if (k < 0 || k >= nodes) {
        // Eq. (11), y side: the assignment indexes a node that does not
        // exist — a non-binary / out-of-domain decision variable.
        report.violations.push_back({Constraint::kBinarity, request.id, k, m,
                                     static_cast<int>(pos),
                                     static_cast<double>(k),
                                     static_cast<double>(nodes - 1)});
        structurally_ok = false;
      } else if (!placement.deployed(m, k)) {
        // Eq. (10): y(h,pos,k) <= x(i,k).
        report.violations.push_back({Constraint::kDeployment, request.id, k,
                                     m, static_cast<int>(pos), 1.0, 0.0});
        structurally_ok = false;
      }
    }

    if (!structurally_ok) {
      malformed = true;  // D_h undefined for a malformed assignment
      continue;
    }
    const std::size_t c =
        static_cast<std::size_t>(classes.class_of(request.id));
    const int rep = classes.cls(static_cast<int>(c)).representative;
    double d;
    if (std::ranges::equal(route, assignment.user_route(rep))) {
      // The representative has the lowest id in its class, so its walk has
      // already populated the memo by the time any other member reads it.
      if (!class_d_known[c]) {
        class_d[c] = completion_time(request, route);
        class_d_known[c] = true;
      } else {
        ++report.latency_memo_hits;
      }
      d = class_d[c];
      class_uniform_weight[c] += 1.0;
    } else {
      d = completion_time(request, route);
      total += d;
    }
    report.user_latency[static_cast<std::size_t>(request.id)] = d;
    // Eq. (4): per-user completion-time tolerance. An unreachable hop
    // (d == +inf) violates every finite deadline.
    if (d > request.deadline + kTol) {
      report.violations.push_back({Constraint::kDeadline, request.id,
                                   net::kInvalidNode, workload::kInvalidMs,
                                   -1, d, request.deadline});
    }
  }
  for (std::size_t c = 0; c < class_d.size(); ++c) {
    if (class_uniform_weight[c] > 0.0) {
      total += class_uniform_weight[c] * class_d[c];
    }
  }
  if (malformed) total = kInf;
  report.total_latency = total;
  const auto& constants = scenario_->constants();
  report.objective =
      constants.lambda * report.deployment_cost +
      (1.0 - constants.lambda) * constants.latency_weight * total;
  return report;
}

void install_validation(core::SoCLParams& params, bool log_violations) {
  params.post_solve_hook = [log_violations](const core::Scenario& scenario,
                                            const core::Solution& solution,
                                            obs::ObsSink* sink) {
    const SolutionValidator validator(scenario);
    const Report report =
        solution.assignment.has_value()
            ? validator.validate(solution.placement, *solution.assignment)
            : validator.validate_placement(solution.placement);
    obs::add_counter(sink, "socl.validate.runs", 1);
    obs::add_counter(sink, "socl.validate.violations",
                     static_cast<std::int64_t>(report.violations.size()));
    obs::add_counter(sink, "socl.validate.users_checked",
                     report.users_checked);
    if (std::isfinite(report.total_latency) &&
        std::isfinite(solution.evaluation.total_latency)) {
      obs::observe(sink, "socl.validate.latency_err_s",
                   std::abs(report.total_latency -
                            solution.evaluation.total_latency));
    }
    if (log_violations) {
      for (const auto& violation : report.violations) {
        util::log_warn("validator: ", violation.describe());
      }
    }
  };
}

}  // namespace socl::validate
