// Request-class aggregation: the workload-side key to million-user scale.
//
// Eq. (2) makes a request's completion time D_h a pure function of its
// attachment node, its chain, and its demand profile (edge data volumes,
// upload/return payloads); the deadline D_h^max completes everything the
// constraint system reads per user. Two users agreeing on that tuple are
// therefore indistinguishable to every solver stage, and the per-user loops
// of routing, scoring, evaluation, and validation can run once per
// *equivalence class* and multiply by the class weight (DESIGN.md §4g).
//
// RequestClasses collapses a request vector into such weighted classes.
// Grouping is by exact field equality (a 64-bit FNV-1a fingerprint is only a
// bucketing accelerator — colliding fingerprints never merge distinct
// requests), so the per-class representative routes to bit-identical results
// with every member, which is what lets the aggregated pipeline reproduce
// the per-user pipeline exactly (test_differential's aggregation lane).
#pragma once

#include <cstdint>
#include <vector>

#include "workload/microservice.h"

namespace socl::workload {

/// One equivalence class: users sharing (attach node, chain, edge data,
/// payloads, deadline). The representative is the lowest-id member.
struct RequestClass {
  /// Request id of the representative (== members.front()).
  int representative = -1;
  /// Class cardinality as a double: totals are formed as weight · value, so
  /// the weighted sum is one rounding per class rather than |members|.
  double weight = 0.0;
  /// Member request ids, ascending. The expansion API: per-user outputs
  /// (CSV rows, D_h audits, arrival traces) fan a class value back out.
  std::vector<int> members;
  /// FNV-1a fingerprint of the demand tuple (bucketing key, not identity).
  std::uint64_t fingerprint = 0;

  int size() const { return static_cast<int>(members.size()); }
};

/// 64-bit FNV-1a over everything Eq. (2) and Eq. (4) read from one request:
/// attach node, chain, edge data bits, payload bits, deadline bits. The id
/// is deliberately excluded — it is the one field aggregation erases.
std::uint64_t request_fingerprint(const UserRequest& request);

/// True when a and b are interchangeable to the solver stack (exact field
/// equality on the fingerprinted tuple; ids may differ).
bool same_request_class(const UserRequest& a, const UserRequest& b);

/// The aggregation pass: collapses a request vector into weighted classes.
/// Deterministic: classes are ordered by first appearance (ascending
/// representative id when requests arrive in id order) and members keep the
/// input order. Requires dense unique ids in [0, requests.size()).
class RequestClasses {
 public:
  RequestClasses() = default;
  explicit RequestClasses(const std::vector<UserRequest>& requests);

  int num_classes() const { return static_cast<int>(classes_.size()); }
  int num_users() const { return num_users_; }

  const std::vector<RequestClass>& classes() const { return classes_; }
  const RequestClass& cls(int c) const {
    return classes_.at(static_cast<std::size_t>(c));
  }

  /// Class index of one user (request id).
  int class_of(int user) const {
    return class_of_.at(static_cast<std::size_t>(user));
  }

  /// Σ class weights == number of users.
  double total_weight() const { return static_cast<double>(num_users_); }

  /// users / classes — the socl.scale.compression metric; 1.0 when empty.
  double compression_ratio() const {
    return classes_.empty() ? 1.0
                            : static_cast<double>(num_users_) /
                                  static_cast<double>(classes_.size());
  }

  /// Class ids (ascending) whose representative chain contains microservice
  /// m; empty for services no class uses. An inverted chain index: per-
  /// microservice consumers (ζ sweeps, demand scans) iterate it instead of
  /// testing `uses(m)` against every class. Ids outside the indexed range
  /// (no class mentions them) resolve to the empty list.
  const std::vector<int>& classes_using(MsId m) const {
    const auto idx = static_cast<std::size_t>(m);
    return idx < classes_using_.size() ? classes_using_[idx] : kNoClasses;
  }

 private:
  std::vector<RequestClass> classes_;
  std::vector<int> class_of_;
  /// classes_using_[m]: ascending class ids with m in their chain.
  std::vector<std::vector<int>> classes_using_;
  int num_users_ = 0;

  static const std::vector<int> kNoClasses;
};

/// Structure-of-arrays view of the per-class demand tuples — everything
/// Eq. (2) reads, flattened into contiguous buffers so the scoring kernel
/// (core/score_kernel.h) walks plain arrays instead of chasing one
/// UserRequest per class. Class c's chain occupies
/// chain[chain_offset[c] .. chain_offset[c+1]) and its chain-edge data
/// volumes occupy edge_data[edge_offset[c] .. edge_offset[c+1])
/// (edge e sits between chain positions e and e+1). Values are copied
/// verbatim from the representatives, so anything computed from this view is
/// bit-identical to computing from the requests themselves.
struct ClassDemandSoA {
  std::vector<std::int32_t> chain_offset;  ///< size num_classes()+1
  std::vector<MsId> chain;                 ///< flat concatenated chains
  std::vector<std::int32_t> edge_offset;   ///< size num_classes()+1
  std::vector<double> edge_data;           ///< flat chain-edge volumes
  std::vector<net::NodeId> attach;         ///< attach node per class
  std::vector<double> data_in;             ///< upload payload per class
  std::vector<double> data_out;            ///< return payload per class
  std::vector<double> deadline;            ///< D_h^max per class
  std::vector<double> weight;              ///< class cardinality per class
  std::vector<int> representative;         ///< representative request id

  int num_classes() const { return static_cast<int>(attach.size()); }
  std::size_t chain_length(int c) const {
    return static_cast<std::size_t>(chain_offset[static_cast<std::size_t>(c) +
                                                 1] -
                                    chain_offset[static_cast<std::size_t>(c)]);
  }

  /// Rebuilds the view from a class partition over its request vector
  /// (buffer capacity is reused, so periodic rebuilds on workload mutation
  /// settle into zero allocations once the sizes stabilise).
  void build(const RequestClasses& classes,
             const std::vector<UserRequest>& requests);

  /// Heap footprint of the flattened buffers (the socl.kernel.soa_bytes
  /// gauge feeds from this).
  std::size_t bytes() const;
};

/// Synthetic population builder for the scale benches: replicates the given
/// template requests round-robin up to `num_users` requests with fresh dense
/// ids, so the resulting workload has at most `templates.size()` request
/// classes whatever the population size.
std::vector<UserRequest> replicate_requests(
    const std::vector<UserRequest>& templates, int num_users);

}  // namespace socl::workload
