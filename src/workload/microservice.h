// Microservice and user-request models from Section III-A.
//
// A microservice m_i carries a deployment cost κ(m_i), a storage requirement
// φ(m_i), and a computing requirement q(m_i). A user request u_h is a
// directed chain of microservices M_h with communication edges E_h whose data
// volumes r_{m_i→m_j} drive the link-delay terms of Eq. (2).
#pragma once

#include <string>
#include <vector>

#include "net/graph.h"

namespace socl::workload {

using MsId = int;

inline constexpr MsId kInvalidMs = -1;

/// One microservice type (instances of it may be deployed on many nodes).
struct Microservice {
  MsId id = kInvalidMs;
  std::string name;
  /// Deployment cost κ(m_i) per instance, in cost units.
  double deploy_cost = 300.0;
  /// Storage requirement φ(m_i) per instance, in storage units.
  double storage = 1.0;
  /// Computing requirement q(m_i) in GFLOP per invocation.
  double compute_gflop = 2.0;
};

/// A user request u_h = {M_h, E_h}: a chain of microservices with data
/// volumes on the chain edges, an attachment node (the edge server whose
/// coverage area the user is in, f(u_h)), upload/return payload sizes, and a
/// completion-time tolerance D_h^max.
struct UserRequest {
  int id = -1;
  /// Edge server the user currently associates with (U_k membership).
  net::NodeId attach_node = net::kInvalidNode;
  /// Ordered microservice chain M_h (processing order; a microservice may
  /// appear at multiple positions).
  std::vector<MsId> chain;
  /// Data volume r_{m_i→m_j} on chain edge (pos → pos+1);
  /// size == chain.size() - 1.
  std::vector<double> edge_data;
  /// Upload payload r_in^h (user → first microservice's node).
  double data_in = 1.0;
  /// Return payload r_out^h (last microservice's node → user).
  double data_out = 1.0;
  /// Completion-time tolerance D_h^max (Eq. 4).
  double deadline = 1e9;

  /// True when m appears anywhere in this request's chain.
  bool uses(MsId m) const;
  /// Position of the FIRST occurrence of m in the chain, or -1. Callers
  /// that must see every occurrence (repeats are allowed) should scan the
  /// chain directly.
  int position_of(MsId m) const;
};

/// Validates structural invariants (non-empty chain, matching edge_data
/// length, in-range microservice ids, positive data sizes).
/// Throws std::invalid_argument on violation.
void validate(const UserRequest& request, int num_microservices);

}  // namespace socl::workload
