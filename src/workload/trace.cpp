#include "workload/trace.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/stats.h"

namespace socl::workload {
namespace {

std::uint64_t encode_edge(int from, int to) {
  return static_cast<std::uint64_t>(from) * 1000ULL +
         static_cast<std::uint64_t>(to);
}

}  // namespace

std::vector<TraceFile> generate_trace_files(const TraceGenConfig& config,
                                            std::uint64_t seed) {
  if (config.num_files <= 0 || config.num_services <= 0) {
    throw std::invalid_argument("generate_trace_files: non-positive sizes");
  }
  if (config.min_chain < 2 || config.max_chain < config.min_chain) {
    throw std::invalid_argument("generate_trace_files: bad chain bounds");
  }
  util::Rng rng(seed);

  // Shared base population: each service owns a base chain over a private
  // microservice id range so edges from different services never collide.
  struct ServiceBase {
    std::vector<int> chain;
    double hotspot;  // trigger hotspot bucket centre, drifts per file
    double frequency;
  };
  std::vector<ServiceBase> bases;
  bases.reserve(static_cast<std::size_t>(config.num_services));
  for (int s = 0; s < config.num_services; ++s) {
    ServiceBase base;
    const auto length = static_cast<int>(
        rng.uniform_int(config.min_chain, config.max_chain));
    base.chain.resize(static_cast<std::size_t>(length));
    for (int i = 0; i < length; ++i) base.chain[static_cast<std::size_t>(i)] =
        s * 100 + i;
    base.hotspot = rng.uniform(0.0, static_cast<double>(config.trigger_buckets));
    base.frequency = rng.uniform(50.0, 500.0);
    bases.push_back(std::move(base));
  }

  std::vector<TraceFile> files;
  files.reserve(static_cast<std::size_t>(config.num_files));
  for (int f = 0; f < config.num_files; ++f) {
    TraceFile file;
    file.services.reserve(bases.size());
    for (int s = 0; s < config.num_services; ++s) {
      auto& base = bases[static_cast<std::size_t>(s)];
      ServiceRecord record;
      record.service_id = s;

      // Mutate chain edges: with probability edge_mutation_prob an edge is
      // rewired to a detour node unique to this file, modelling the diverse
      // dependency structures the paper observed.
      for (std::size_t i = 0; i + 1 < base.chain.size(); ++i) {
        if (rng.bernoulli(config.edge_mutation_prob)) {
          const int detour = s * 100 + 50 + f;  // per-file detour node
          record.call_edges.insert(encode_edge(base.chain[i], detour));
          record.call_edges.insert(encode_edge(detour, base.chain[i + 1]));
        } else {
          record.call_edges.insert(
              encode_edge(base.chain[i], base.chain[i + 1]));
        }
      }

      // Trigger histogram around a drifting hotspot.
      record.trigger_histogram.assign(
          static_cast<std::size_t>(config.trigger_buckets), 0.0);
      base.hotspot += rng.normal(0.0, config.trigger_drift);
      const double buckets = static_cast<double>(config.trigger_buckets);
      base.hotspot = std::fmod(std::fmod(base.hotspot, buckets) + buckets,
                               buckets);
      const auto samples =
          static_cast<std::uint64_t>(base.frequency * rng.uniform(0.6, 1.4));
      for (std::uint64_t i = 0; i < samples; ++i) {
        double pos = base.hotspot + rng.normal(0.0, buckets / 8.0);
        pos = std::fmod(std::fmod(pos, buckets) + buckets, buckets);
        record.trigger_histogram[static_cast<std::size_t>(pos)] += 1.0;
      }
      record.occurrences = samples;
      file.services.push_back(std::move(record));
    }
    files.push_back(std::move(file));
  }
  return files;
}

double service_similarity(const ServiceRecord& a, const ServiceRecord& b) {
  const double structural = util::jaccard_similarity(a.call_edges, b.call_edges);
  const double spatial =
      util::cosine_similarity(a.trigger_histogram, b.trigger_histogram);
  return 0.5 * structural + 0.5 * spatial;
}

double cross_file_similarity(const TraceFile& file_a, const TraceFile& file_b,
                             int service_id) {
  const ServiceRecord* rec_a = nullptr;
  const ServiceRecord* rec_b = nullptr;
  for (const auto& record : file_a.services) {
    if (record.service_id == service_id) rec_a = &record;
  }
  for (const auto& record : file_b.services) {
    if (record.service_id == service_id) rec_b = &record;
  }
  if (rec_a == nullptr || rec_b == nullptr) {
    throw std::invalid_argument("cross_file_similarity: service not present");
  }
  return service_similarity(*rec_a, *rec_b);
}

std::vector<double> request_volume_series(int hours, int bins_per_hour,
                                          double base_rate,
                                          std::uint64_t seed) {
  if (hours <= 0 || bins_per_hour <= 0 || base_rate <= 0.0) {
    throw std::invalid_argument("request_volume_series: non-positive input");
  }
  util::Rng rng(seed);
  const int bins = hours * bins_per_hour;
  std::vector<double> series(static_cast<std::size_t>(bins), 0.0);

  // Recurring peaks: two diurnal harmonics (commute + evening) over the
  // observation window, matching the "recurring peaks" shape of Fig. 4.
  for (int b = 0; b < bins; ++b) {
    const double t = static_cast<double>(b) / static_cast<double>(bins_per_hour);
    const double diurnal =
        1.0 + 0.6 * std::sin(2.0 * std::numbers::pi * t / 10.0) +
        0.35 * std::sin(2.0 * std::numbers::pi * t / 3.0 + 1.0);
    series[static_cast<std::size_t>(b)] = base_rate * std::max(diurnal, 0.1);
  }

  // Random flash bursts with exponential decay.
  const int num_bursts = std::max(2, hours);
  for (int burst = 0; burst < num_bursts; ++burst) {
    const auto at = static_cast<int>(rng.uniform_int(0, bins - 1));
    const double magnitude = base_rate * rng.uniform(1.0, 3.0);
    for (int b = at; b < std::min(bins, at + 3 * bins_per_hour / 2); ++b) {
      const double age = static_cast<double>(b - at) /
                         static_cast<double>(bins_per_hour);
      series[static_cast<std::size_t>(b)] += magnitude * std::exp(-2.0 * age);
    }
  }

  // Poisson sampling turns intensities into integer-ish counts.
  for (auto& value : series) {
    value = static_cast<double>(rng.poisson(value));
  }
  return series;
}

}  // namespace socl::workload
