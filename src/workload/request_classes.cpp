#include "workload/request_classes.h"

#include <cstring>
#include <stdexcept>
#include <unordered_map>

namespace socl::workload {
namespace {

// FNV-1a, the same mix the slot simulator uses for demand fingerprints.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv_mix(std::uint64_t hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (byte * 8)) & 0xffULL;
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint64_t bits(double value) {
  std::uint64_t out = 0;
  static_assert(sizeof(out) == sizeof(value));
  std::memcpy(&out, &value, sizeof(out));
  return out;
}

}  // namespace

std::uint64_t request_fingerprint(const UserRequest& request) {
  std::uint64_t hash = kFnvOffset;
  hash = fnv_mix(hash, static_cast<std::uint64_t>(request.attach_node));
  hash = fnv_mix(hash, static_cast<std::uint64_t>(request.chain.size()));
  for (MsId m : request.chain) {
    hash = fnv_mix(hash, static_cast<std::uint64_t>(m));
  }
  for (double volume : request.edge_data) hash = fnv_mix(hash, bits(volume));
  hash = fnv_mix(hash, bits(request.data_in));
  hash = fnv_mix(hash, bits(request.data_out));
  hash = fnv_mix(hash, bits(request.deadline));
  return hash;
}

bool same_request_class(const UserRequest& a, const UserRequest& b) {
  return a.attach_node == b.attach_node && a.chain == b.chain &&
         a.edge_data == b.edge_data && a.data_in == b.data_in &&
         a.data_out == b.data_out && a.deadline == b.deadline;
}

RequestClasses::RequestClasses(const std::vector<UserRequest>& requests)
    : num_users_(static_cast<int>(requests.size())) {
  class_of_.assign(requests.size(), -1);
  // fingerprint → class indices sharing it. Collisions stay distinct classes
  // thanks to the exact-equality check below.
  std::unordered_map<std::uint64_t, std::vector<int>> buckets;
  buckets.reserve(requests.size());

  for (const auto& request : requests) {
    if (request.id < 0 ||
        static_cast<std::size_t>(request.id) >= requests.size() ||
        class_of_[static_cast<std::size_t>(request.id)] != -1) {
      throw std::invalid_argument(
          "RequestClasses: request ids must be dense and unique in "
          "[0, num_users)");
    }
    const std::uint64_t fp = request_fingerprint(request);
    auto& bucket = buckets[fp];
    int cls = -1;
    for (int candidate : bucket) {
      const auto& rep = requests[static_cast<std::size_t>(
          classes_[static_cast<std::size_t>(candidate)].representative)];
      if (same_request_class(rep, request)) {
        cls = candidate;
        break;
      }
    }
    if (cls < 0) {
      cls = static_cast<int>(classes_.size());
      RequestClass fresh;
      fresh.representative = request.id;
      fresh.fingerprint = fp;
      classes_.push_back(std::move(fresh));
      bucket.push_back(cls);
    }
    auto& entry = classes_[static_cast<std::size_t>(cls)];
    entry.members.push_back(request.id);
    entry.weight += 1.0;
    class_of_[static_cast<std::size_t>(request.id)] = cls;
  }

  // Inverted chain index. Class order is ascending by construction; a chain
  // may repeat a microservice, so skip ids already recorded for this class.
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    const auto& chain =
        requests[static_cast<std::size_t>(classes_[c].representative)].chain;
    for (MsId m : chain) {
      const auto idx = static_cast<std::size_t>(m);
      if (idx >= classes_using_.size()) classes_using_.resize(idx + 1);
      auto& list = classes_using_[idx];
      if (list.empty() || list.back() != static_cast<int>(c)) {
        list.push_back(static_cast<int>(c));
      }
    }
  }
}

const std::vector<int> RequestClasses::kNoClasses;

void ClassDemandSoA::build(const RequestClasses& classes,
                           const std::vector<UserRequest>& requests) {
  const auto count = static_cast<std::size_t>(classes.num_classes());
  chain_offset.clear();
  chain.clear();
  edge_offset.clear();
  edge_data.clear();
  attach.clear();
  data_in.clear();
  data_out.clear();
  deadline.clear();
  weight.clear();
  representative.clear();
  chain_offset.reserve(count + 1);
  edge_offset.reserve(count + 1);
  attach.reserve(count);

  chain_offset.push_back(0);
  edge_offset.push_back(0);
  for (std::size_t c = 0; c < count; ++c) {
    const RequestClass& cls = classes.cls(static_cast<int>(c));
    const UserRequest& rep =
        requests.at(static_cast<std::size_t>(cls.representative));
    chain.insert(chain.end(), rep.chain.begin(), rep.chain.end());
    edge_data.insert(edge_data.end(), rep.edge_data.begin(),
                     rep.edge_data.end());
    chain_offset.push_back(static_cast<std::int32_t>(chain.size()));
    edge_offset.push_back(static_cast<std::int32_t>(edge_data.size()));
    attach.push_back(rep.attach_node);
    data_in.push_back(rep.data_in);
    data_out.push_back(rep.data_out);
    deadline.push_back(rep.deadline);
    weight.push_back(cls.weight);
    representative.push_back(cls.representative);
  }
}

std::size_t ClassDemandSoA::bytes() const {
  return chain_offset.capacity() * sizeof(std::int32_t) +
         chain.capacity() * sizeof(MsId) +
         edge_offset.capacity() * sizeof(std::int32_t) +
         edge_data.capacity() * sizeof(double) +
         attach.capacity() * sizeof(net::NodeId) +
         (data_in.capacity() + data_out.capacity() + deadline.capacity() +
          weight.capacity()) *
             sizeof(double) +
         representative.capacity() * sizeof(int);
}

std::vector<UserRequest> replicate_requests(
    const std::vector<UserRequest>& templates, int num_users) {
  if (templates.empty()) {
    throw std::invalid_argument("replicate_requests: empty template set");
  }
  std::vector<UserRequest> out;
  out.reserve(static_cast<std::size_t>(num_users));
  for (int h = 0; h < num_users; ++h) {
    UserRequest request =
        templates[static_cast<std::size_t>(h) % templates.size()];
    request.id = h;
    out.push_back(std::move(request));
  }
  return out;
}

}  // namespace socl::workload
