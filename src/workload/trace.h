// Synthetic stand-in for the Alibaba Cluster Trace Program analyses of
// Section I (Figs. 3 and 4).
//
// The paper only consumes aggregate trace properties:
//   - Fig. 3(a): similarity of the 10 most frequent services across trace
//     files varies widely (dynamic, heterogeneous service landscape);
//   - Fig. 3(b): for services with dependency chains of 12+ microservices,
//     the maximum pairwise trace similarity is only ~0.65 (diverse trigger
//     points and dependency structures);
//   - Fig. 4: request volume over 10 hours shows strong temporal fluctuation
//     with recurring peaks.
//
// The generator below produces per-file service call records with
// controllable chain-mutation and trigger-drift rates, plus a diurnal+bursty
// arrival process, so the same statistics can be recomputed.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "util/rng.h"

namespace socl::workload {

/// One service's records inside one trace file.
struct ServiceRecord {
  int service_id = -1;
  /// Dependency edges observed for this service in this file, encoded as
  /// from * 1000 + to over synthetic microservice ids.
  std::unordered_set<std::uint64_t> call_edges;
  /// Request counts per trigger location bucket.
  std::vector<double> trigger_histogram;
  /// Total record count for the service in this file.
  std::uint64_t occurrences = 0;
};

/// One synthetic trace file (e.g. one hour of cluster records).
struct TraceFile {
  std::vector<ServiceRecord> services;
};

struct TraceGenConfig {
  int num_files = 12;
  int num_services = 10;
  /// Base dependency-chain length per service; services used for Fig. 3(b)
  /// get >= 12.
  int min_chain = 12;
  int max_chain = 18;
  /// Per-file probability of rewiring each chain edge (structure drift).
  double edge_mutation_prob = 0.35;
  /// Trigger-location buckets and per-file drift of the hotspot.
  int trigger_buckets = 16;
  double trigger_drift = 2.0;
};

/// Generates `config.num_files` files over a shared service population.
/// Deterministic in `seed`.
std::vector<TraceFile> generate_trace_files(const TraceGenConfig& config,
                                            std::uint64_t seed);

/// Similarity between two services within the same file (Fig. 3(a) input):
/// Jaccard over call edges blended 50/50 with cosine over trigger histograms.
double service_similarity(const ServiceRecord& a, const ServiceRecord& b);

/// Similarity of one service across two files (Fig. 3(b) input).
double cross_file_similarity(const TraceFile& file_a, const TraceFile& file_b,
                             int service_id);

/// Diurnal + bursty arrival process for Fig. 4: expected request volume per
/// time bin over `hours` hours with `bins_per_hour` resolution. Peaks recur
/// at commute/evening hours; random bursts ride on top.
std::vector<double> request_volume_series(int hours, int bins_per_hour,
                                          double base_rate,
                                          std::uint64_t seed);

}  // namespace socl::workload
