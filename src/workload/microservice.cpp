#include "workload/microservice.h"

#include <stdexcept>

namespace socl::workload {

bool UserRequest::uses(MsId m) const { return position_of(m) >= 0; }

int UserRequest::position_of(MsId m) const {
  for (std::size_t pos = 0; pos < chain.size(); ++pos) {
    if (chain[pos] == m) return static_cast<int>(pos);
  }
  return -1;
}

void validate(const UserRequest& request, int num_microservices) {
  if (request.chain.empty()) {
    throw std::invalid_argument("UserRequest: empty chain");
  }
  if (request.edge_data.size() + 1 != request.chain.size()) {
    throw std::invalid_argument("UserRequest: edge_data/chain size mismatch");
  }
  // A microservice may appear multiple times in a chain (e.g. auth called
  // before and after a payment step); the layered routing DP handles
  // repeats natively, so only the id range is validated here.
  for (MsId m : request.chain) {
    if (m < 0 || m >= num_microservices) {
      throw std::invalid_argument("UserRequest: microservice id out of range");
    }
  }
  for (double r : request.edge_data) {
    if (r <= 0.0) throw std::invalid_argument("UserRequest: edge data <= 0");
  }
  if (request.data_in <= 0.0 || request.data_out <= 0.0) {
    throw std::invalid_argument("UserRequest: payload <= 0");
  }
  if (request.deadline <= 0.0) {
    throw std::invalid_argument("UserRequest: non-positive deadline");
  }
}

}  // namespace socl::workload
