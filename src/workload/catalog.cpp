#include "workload/catalog.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace socl::workload {

AppCatalog::AppCatalog(std::string name,
                       std::vector<Microservice> microservices,
                       std::vector<ChainTemplate> templates)
    : name_(std::move(name)),
      microservices_(std::move(microservices)),
      templates_(std::move(templates)) {
  if (microservices_.empty()) {
    throw std::invalid_argument("AppCatalog: no microservices");
  }
  for (std::size_t i = 0; i < microservices_.size(); ++i) {
    microservices_[i].id = static_cast<MsId>(i);
  }
  for (const auto& tpl : templates_) {
    if (tpl.chain.empty()) {
      throw std::invalid_argument("AppCatalog: empty template " + tpl.name);
    }
    std::unordered_set<MsId> seen;
    for (MsId m : tpl.chain) {
      if (m < 0 || m >= num_microservices()) {
        throw std::invalid_argument("AppCatalog: bad id in template " +
                                    tpl.name);
      }
      if (!seen.insert(m).second) {
        throw std::invalid_argument("AppCatalog: repeated id in template " +
                                    tpl.name);
      }
    }
    if (tpl.weight <= 0.0) {
      throw std::invalid_argument("AppCatalog: non-positive weight in " +
                                  tpl.name);
    }
  }
}

double AppCatalog::total_single_instance_cost() const {
  double total = 0.0;
  for (const auto& ms : microservices_) total += ms.deploy_cost;
  return total;
}

double AppCatalog::max_storage() const {
  double top = 0.0;
  for (const auto& ms : microservices_) top = std::max(top, ms.storage);
  return top;
}

const AppCatalog& eshop_catalog() {
  // Microservice inventory of eshopOnContainers. κ/φ/q are calibrated to the
  // paper's ranges: q ∈ [1, 3] GFLOP per invocation; the heavier backend
  // services carry larger install cost and storage than the thin gateways.
  //
  //  id  service
  //   0  web-bff        HTTP aggregator / API gateway
  //   1  identity-api   authentication & tokens
  //   2  catalog-api    product catalog
  //   3  basket-api     shopping basket (Redis-backed)
  //   4  ordering-api   order management
  //   5  payment-api    payment processing
  //   6  marketing-api  campaigns
  //   7  locations-api  geo-fencing for campaigns
  //   8  event-bus      integration-event broker (RabbitMQ)
  //   9  webhooks-api   outbound notifications
  //  10  ordering-bg    ordering background tasks (grace-period handling)
  //  11  signalr-hub    client push notifications
  static const AppCatalog catalog(
      "eshopOnContainers",
      {
          {kInvalidMs, "web-bff", 240.0, 1.0, 1.0},
          {kInvalidMs, "identity-api", 300.0, 1.0, 1.4},
          {kInvalidMs, "catalog-api", 380.0, 2.0, 2.2},
          {kInvalidMs, "basket-api", 300.0, 1.0, 1.6},
          {kInvalidMs, "ordering-api", 420.0, 2.0, 2.8},
          {kInvalidMs, "payment-api", 340.0, 1.0, 2.0},
          {kInvalidMs, "marketing-api", 300.0, 1.0, 1.8},
          {kInvalidMs, "locations-api", 260.0, 1.0, 1.2},
          {kInvalidMs, "event-bus", 280.0, 1.0, 1.0},
          {kInvalidMs, "webhooks-api", 260.0, 1.0, 1.3},
          {kInvalidMs, "ordering-bg", 320.0, 1.0, 2.4},
          {kInvalidMs, "signalr-hub", 240.0, 1.0, 1.1},
      },
      {
          {"browse", {0, 1, 2}, 3.0},
          {"search", {0, 2}, 2.0},
          {"basket-update", {0, 1, 3}, 2.0},
          {"checkout", {0, 1, 3, 4, 5}, 2.0},
          {"order-status", {0, 1, 4, 11}, 1.0},
          {"campaign", {0, 1, 6, 7}, 1.0},
          {"order-fulfilment", {4, 10, 8, 9}, 0.7},
          {"full-purchase", {0, 1, 2, 3, 4, 5, 8, 9}, 0.8},
      });
  return catalog;
}

const AppCatalog& sock_shop_catalog() {
  // Weaveworks Sock Shop services. Chains follow the demo's request flows:
  // browsing goes front-end -> catalogue; checkout fans through carts,
  // orders, payment and shipping; queue-master drains shipping events.
  //
  //  id  service
  //   0  front-end     3  carts        6  shipping
  //   1  user          4  orders       7  queue-master
  //   2  catalogue     5  payment      8  session-db (edge cache tier)
  static const AppCatalog catalog(
      "sock-shop",
      {
          {kInvalidMs, "front-end", 220.0, 1.0, 1.0},
          {kInvalidMs, "user", 280.0, 1.0, 1.3},
          {kInvalidMs, "catalogue", 320.0, 2.0, 1.8},
          {kInvalidMs, "carts", 300.0, 1.0, 1.5},
          {kInvalidMs, "orders", 400.0, 2.0, 2.6},
          {kInvalidMs, "payment", 340.0, 1.0, 1.9},
          {kInvalidMs, "shipping", 300.0, 1.0, 1.6},
          {kInvalidMs, "queue-master", 260.0, 1.0, 1.2},
          {kInvalidMs, "session-db", 240.0, 2.0, 1.1},
      },
      {
          {"browse", {0, 2}, 3.0},
          {"login", {0, 1, 8}, 1.5},
          {"cart-update", {0, 1, 3}, 2.0},
          {"checkout", {0, 1, 3, 4, 5, 6}, 1.5},
          {"ship-event", {4, 6, 7}, 0.8},
      });
  return catalog;
}

const AppCatalog& train_ticket_catalog() {
  // FudanSELab Train Ticket, 20-service subset. The booking flow is the
  // longest dependency chain shipped with the library (9 services),
  // matching the dataset's deep-chain characteristics.
  //
  //  id  service            id  service            id  service
  //   0  ui-gateway          7  order              14  notification
  //   1  auth                8  payment            15  consign
  //   2  user                9  inside-payment     16  route
  //   3  travel             10  cancel             17  price
  //   4  ticket-info        11  execute            18  assurance
  //   5  seat               12  security           19  contacts
  //   6  station            13  food
  static const AppCatalog catalog(
      "train-ticket",
      {
          {kInvalidMs, "ui-gateway", 200.0, 1.0, 1.0},
          {kInvalidMs, "auth", 260.0, 1.0, 1.2},
          {kInvalidMs, "user", 260.0, 1.0, 1.3},
          {kInvalidMs, "travel", 360.0, 2.0, 2.4},
          {kInvalidMs, "ticket-info", 300.0, 1.0, 1.8},
          {kInvalidMs, "seat", 300.0, 1.0, 1.7},
          {kInvalidMs, "station", 240.0, 1.0, 1.1},
          {kInvalidMs, "order", 400.0, 2.0, 2.8},
          {kInvalidMs, "payment", 340.0, 1.0, 2.0},
          {kInvalidMs, "inside-payment", 300.0, 1.0, 1.6},
          {kInvalidMs, "cancel", 280.0, 1.0, 1.5},
          {kInvalidMs, "execute", 300.0, 1.0, 1.7},
          {kInvalidMs, "security", 260.0, 1.0, 1.4},
          {kInvalidMs, "food", 260.0, 1.0, 1.3},
          {kInvalidMs, "notification", 220.0, 1.0, 1.0},
          {kInvalidMs, "consign", 260.0, 1.0, 1.4},
          {kInvalidMs, "route", 280.0, 1.0, 1.6},
          {kInvalidMs, "price", 240.0, 1.0, 1.2},
          {kInvalidMs, "assurance", 240.0, 1.0, 1.2},
          {kInvalidMs, "contacts", 240.0, 1.0, 1.1},
      },
      {
          {"search", {0, 3, 16, 17}, 3.0},
          {"ticket-detail", {0, 4, 6}, 2.0},
          {"book", {0, 1, 12, 19, 3, 5, 18, 7, 8}, 1.5},
          {"pay", {0, 1, 7, 8, 9, 14}, 1.2},
          {"cancel", {0, 1, 7, 10, 9, 14}, 0.8},
          {"boarding", {0, 1, 11, 7}, 0.8},
          {"food-order", {0, 1, 13, 6}, 0.6},
          {"consign", {0, 1, 15, 7}, 0.5},
          {"profile", {0, 1, 2, 19}, 0.8},
      });
  return catalog;
}

const AppCatalog& tiny_catalog() {
  static const AppCatalog catalog(
      "tiny",
      {
          {kInvalidMs, "frontend", 200.0, 1.0, 1.0},
          {kInvalidMs, "logic", 300.0, 1.0, 2.0},
          {kInvalidMs, "storage", 250.0, 2.0, 1.5},
      },
      {
          {"read", {0, 2}, 1.0},
          {"write", {0, 1, 2}, 1.0},
      });
  return catalog;
}

const AppCatalog& catalog_by_name(const std::string& name) {
  if (name == "eshop") return eshop_catalog();
  if (name == "sockshop") return sock_shop_catalog();
  if (name == "trainticket") return train_ticket_catalog();
  if (name == "tiny") return tiny_catalog();
  throw std::invalid_argument("catalog_by_name: unknown catalog " + name);
}

}  // namespace socl::workload
