// User behaviour modelling — the paper's stated future-work direction
// ("future research will incorporate user behavior modeling and preference
// integration to support context-aware resource management").
//
// Each user carries a preference profile over behavioural archetypes
// (browser / buyer / account-manager / background). Profiles bias which
// chain templates the user draws, how much data they move, and how often
// they re-issue requests — so demand is no longer i.i.d. across users and
// placements can exploit per-region interest structure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"
#include "workload/catalog.h"

namespace socl::workload {

/// Behavioural archetypes with distinct template-affinity signatures.
enum class Archetype {
  kBrowser,     // mostly read flows, small payloads, frequent requests
  kBuyer,       // checkout-heavy, larger payloads
  kManager,     // account/status flows
  kBackground,  // machine-to-machine flows (webhooks, fulfilment)
};

const char* to_string(Archetype archetype);

/// One user's mixture over archetypes plus intensity scalars.
struct UserProfile {
  /// Mixture weights, one per archetype (normalised on construction).
  std::vector<double> affinity;
  /// Multiplier on payload sizes (buyers move more data).
  double data_scale = 1.0;
  /// Relative request frequency (used by trace-driven simulations).
  double request_rate = 1.0;

  Archetype dominant() const;
};

/// Population-level behaviour model: assigns profiles and turns them into
/// per-user template weights for a concrete catalog.
class BehaviorModel {
 public:
  /// Mixes archetypes with the given population shares (normalised);
  /// default is a retail-like 55% browser / 20% buyer / 15% manager /
  /// 10% background split.
  explicit BehaviorModel(std::vector<double> population_shares = {
                             0.55, 0.20, 0.15, 0.10});

  /// Samples a profile (mixture sharpened around one archetype).
  UserProfile sample_profile(util::Rng& rng) const;

  /// Template-selection weights for `profile` on `catalog`: the base
  /// template weights modulated by how well each template's services match
  /// the profile's archetypes. Always strictly positive.
  std::vector<double> template_weights(const AppCatalog& catalog,
                                       const UserProfile& profile) const;

  /// Heuristic archetype score of a chain template, by name and shape:
  /// short read-ish chains score browser, payment-bearing chains score
  /// buyer, etc. Exposed for tests.
  static std::vector<double> template_signature(const AppCatalog& catalog,
                                                const ChainTemplate& tpl);

 private:
  std::vector<double> shares_;
};

/// Generates behaviour-aware requests: like generate_requests but drawing
/// templates per user profile and scaling payloads by data_scale. Returns
/// the profiles alongside (index-aligned with the requests).
struct BehaviorWorkload {
  std::vector<UserRequest> requests;
  std::vector<UserProfile> profiles;
};

BehaviorWorkload generate_behavior_requests(const net::EdgeNetwork& network,
                                            const AppCatalog& catalog,
                                            const BehaviorModel& model,
                                            int num_users,
                                            std::uint64_t seed);

}  // namespace socl::workload
