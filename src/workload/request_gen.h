// User-request generation: draws chains from the catalog templates, attaches
// users to edge servers with a hotspot-weighted spatial distribution (user
// origin locations are uncertain — Section I), and sizes data flows per the
// paper's [1, 80] range. Deadlines D_h^max are set as a slack multiple of an
// optimistic per-request latency estimate so the QoS constraint (Eq. 4)
// binds occasionally but not pathologically.
#pragma once

#include <cstdint>
#include <vector>

#include "net/graph.h"
#include "util/rng.h"
#include "workload/catalog.h"
#include "workload/microservice.h"

namespace socl::workload {

struct RequestGenConfig {
  int num_users = 40;
  /// Data-volume range for chain edges and request payloads.
  double data_min = 1.0;
  double data_max = 80.0;
  /// Fraction of nodes that act as demand hotspots and their extra weight.
  double hotspot_fraction = 0.3;
  double hotspot_weight = 4.0;
  /// Deadline = slack · optimistic latency estimate.
  double deadline_slack = 6.0;
  /// Probability of truncating a template chain at a random suffix point,
  /// modelling partially executed flows observed in the traces.
  double truncate_prob = 0.2;
};

/// Generates `config.num_users` requests over the given network and catalog.
/// Deterministic in `seed`.
std::vector<UserRequest> generate_requests(const net::EdgeNetwork& network,
                                           const AppCatalog& catalog,
                                           const RequestGenConfig& config,
                                           std::uint64_t seed);

/// Per-node attachment weights used by the generator (exposed for tests and
/// for the mobility model, which preserves the same spatial bias).
std::vector<double> attachment_weights(std::size_t num_nodes,
                                       const RequestGenConfig& config,
                                       util::Rng& rng);

}  // namespace socl::workload
