#include "workload/behavior.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "workload/request_gen.h"

namespace socl::workload {
namespace {

constexpr std::size_t kArchetypes = 4;

double normalise(std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("behavior: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("behavior: zero weights");
  for (double& w : weights) w /= total;
  return total;
}

bool name_contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

}  // namespace

const char* to_string(Archetype archetype) {
  switch (archetype) {
    case Archetype::kBrowser:
      return "browser";
    case Archetype::kBuyer:
      return "buyer";
    case Archetype::kManager:
      return "manager";
    case Archetype::kBackground:
      return "background";
  }
  return "?";
}

Archetype UserProfile::dominant() const {
  std::size_t best = 0;
  for (std::size_t a = 1; a < affinity.size(); ++a) {
    if (affinity[a] > affinity[best]) best = a;
  }
  return static_cast<Archetype>(best);
}

BehaviorModel::BehaviorModel(std::vector<double> population_shares)
    : shares_(std::move(population_shares)) {
  if (shares_.size() != kArchetypes) {
    throw std::invalid_argument("BehaviorModel: need 4 population shares");
  }
  normalise(shares_);
}

UserProfile BehaviorModel::sample_profile(util::Rng& rng) const {
  UserProfile profile;
  const auto primary = rng.weighted_index(shares_);
  profile.affinity.assign(kArchetypes, 0.1);
  profile.affinity[primary] = 1.0;
  // Small random secondary interests keep the mixture soft.
  for (auto& a : profile.affinity) a *= rng.uniform(0.7, 1.3);
  normalise(profile.affinity);

  switch (static_cast<Archetype>(primary)) {
    case Archetype::kBrowser:
      profile.data_scale = rng.uniform(0.6, 1.0);
      profile.request_rate = rng.uniform(1.2, 2.0);
      break;
    case Archetype::kBuyer:
      profile.data_scale = rng.uniform(1.2, 1.8);
      profile.request_rate = rng.uniform(0.8, 1.2);
      break;
    case Archetype::kManager:
      profile.data_scale = rng.uniform(0.8, 1.2);
      profile.request_rate = rng.uniform(0.5, 1.0);
      break;
    case Archetype::kBackground:
      profile.data_scale = rng.uniform(0.9, 1.4);
      profile.request_rate = rng.uniform(0.3, 0.8);
      break;
  }
  return profile;
}

std::vector<double> BehaviorModel::template_signature(
    const AppCatalog& catalog, const ChainTemplate& tpl) {
  std::vector<double> signature(kArchetypes, 0.1);  // floor keeps positivity

  // Name cues across the shipped catalogs.
  bool has_payment = false;
  bool has_account = false;
  bool has_machine = false;
  for (const MsId m : tpl.chain) {
    const auto& name = catalog.microservice(m).name;
    has_payment |= name_contains(name, "payment") ||
                   name_contains(name, "basket") ||
                   name_contains(name, "carts") ||
                   name_contains(name, "order");
    has_account |= name_contains(name, "identity") ||
                   name_contains(name, "user") || name_contains(name, "auth");
    has_machine |= name_contains(name, "webhook") ||
                   name_contains(name, "event") ||
                   name_contains(name, "queue") ||
                   name_contains(name, "notification") ||
                   name_contains(name, "bg");
  }

  // Shape cues: short chains read like browsing, long ones like purchases.
  if (tpl.chain.size() <= 3) signature[0] += 1.0;  // browser
  if (has_payment) signature[1] += 1.2;            // buyer
  if (tpl.chain.size() >= 6) signature[1] += 0.4;
  if (has_account && !has_payment) signature[2] += 1.0;  // manager
  if (has_machine) signature[3] += 1.2;                  // background
  // Machine flows that skip the gateway strongly indicate background work.
  if (!tpl.chain.empty() && tpl.chain.front() != 0) signature[3] += 0.6;

  return signature;
}

std::vector<double> BehaviorModel::template_weights(
    const AppCatalog& catalog, const UserProfile& profile) const {
  std::vector<double> weights;
  weights.reserve(catalog.templates().size());
  for (const auto& tpl : catalog.templates()) {
    const auto signature = template_signature(catalog, tpl);
    double match = 0.0;
    for (std::size_t a = 0; a < kArchetypes; ++a) {
      match += profile.affinity[a] * signature[a];
    }
    weights.push_back(tpl.weight * match);
  }
  return weights;
}

BehaviorWorkload generate_behavior_requests(const net::EdgeNetwork& network,
                                            const AppCatalog& catalog,
                                            const BehaviorModel& model,
                                            int num_users,
                                            std::uint64_t seed) {
  if (num_users < 0) {
    throw std::invalid_argument("generate_behavior_requests: negative count");
  }
  util::Rng rng(seed);
  RequestGenConfig base;
  const auto node_weights =
      attachment_weights(network.num_nodes(), base, rng);

  // Deadline-estimate constants shared with the plain generator.
  double max_compute = 0.0;
  for (std::size_t k = 0; k < network.num_nodes(); ++k) {
    max_compute = std::max(
        max_compute, network.node(static_cast<net::NodeId>(k)).compute_gflops);
  }
  double rate_sum = 0.0;
  for (std::size_t l = 0; l < network.num_links(); ++l) {
    rate_sum += network.link(static_cast<net::LinkId>(l)).rate_gbps;
  }
  const double mean_rate =
      network.num_links() ? rate_sum / static_cast<double>(network.num_links())
                          : 1.0;

  BehaviorWorkload workload;
  workload.requests.reserve(static_cast<std::size_t>(num_users));
  workload.profiles.reserve(static_cast<std::size_t>(num_users));
  for (int h = 0; h < num_users; ++h) {
    UserProfile profile = model.sample_profile(rng);
    const auto tpl_weights = model.template_weights(catalog, profile);

    UserRequest request;
    request.id = h;
    request.attach_node =
        static_cast<net::NodeId>(rng.weighted_index(node_weights));
    request.chain =
        catalog.templates()[rng.weighted_index(tpl_weights)].chain;
    request.edge_data.resize(request.chain.size() - 1);
    for (auto& r : request.edge_data) {
      r = rng.uniform(base.data_min, base.data_max) * profile.data_scale;
    }
    request.data_in =
        rng.uniform(base.data_min, base.data_max) * profile.data_scale;
    request.data_out = rng.uniform(base.data_min, base.data_max * 0.25) *
                       profile.data_scale;

    double estimate = (request.data_in + request.data_out) / mean_rate;
    for (MsId m : request.chain) {
      estimate += catalog.microservice(m).compute_gflop / max_compute;
    }
    for (double r : request.edge_data) estimate += r / mean_rate;
    request.deadline = base.deadline_slack * estimate;

    validate(request, catalog.num_microservices());
    workload.requests.push_back(std::move(request));
    workload.profiles.push_back(std::move(profile));
  }
  return workload;
}

}  // namespace socl::workload
