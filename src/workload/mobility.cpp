#include "workload/mobility.h"

#include <algorithm>

#include "net/failures.h"

#include <stdexcept>

namespace socl::workload {

void mobility_step(const net::EdgeNetwork& network,
                   std::vector<UserRequest>& requests,
                   const std::vector<double>& weights,
                   const MobilityConfig& config, util::Rng& rng) {
  if (weights.size() != network.num_nodes()) {
    throw std::invalid_argument("mobility_step: weight size mismatch");
  }
  for (auto& request : requests) {
    if (!rng.bernoulli(config.move_prob)) continue;
    const auto neighbors = network.neighbors(request.attach_node);
    if (!neighbors.empty() && rng.bernoulli(config.local_hop_prob)) {
      request.attach_node = neighbors[rng.index(neighbors.size())].neighbor;
    } else {
      request.attach_node =
          static_cast<net::NodeId>(rng.weighted_index(weights));
    }
  }
}

std::vector<std::vector<net::NodeId>> mobility_trajectory(
    const net::EdgeNetwork& network, std::vector<UserRequest> requests,
    const std::vector<double>& weights, const MobilityConfig& config,
    int slots, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<net::NodeId>> trajectory;
  trajectory.reserve(static_cast<std::size_t>(slots));
  for (int slot = 0; slot < slots; ++slot) {
    mobility_step(network, requests, weights, config, rng);
    std::vector<net::NodeId> positions;
    positions.reserve(requests.size());
    for (const auto& request : requests) {
      positions.push_back(request.attach_node);
    }
    trajectory.push_back(std::move(positions));
  }
  return trajectory;
}

int reattach_users(const net::EdgeNetwork& degraded,
                   const std::vector<net::NodeId>& failed_nodes,
                   std::vector<UserRequest>& requests) {
  // No early-out on empty failed_nodes: link-only failures can isolate
  // alive stations, and failover_targets covers those too.
  const auto fallback = net::failover_targets(degraded, failed_nodes);
  std::vector<std::uint8_t> failed(degraded.num_nodes(), 0);
  for (const net::NodeId k : failed_nodes) {
    if (k >= 0 && static_cast<std::size_t>(k) < degraded.num_nodes()) {
      failed[static_cast<std::size_t>(k)] = 1;
    }
  }
  int moved = 0;
  for (auto& request : requests) {
    const net::NodeId target =
        fallback[static_cast<std::size_t>(request.attach_node)];
    if (target == net::kInvalidNode) {
      if (failed[static_cast<std::size_t>(request.attach_node)] != 0) {
        throw std::runtime_error("reattach_users: no surviving node");
      }
      continue;  // healthy, or isolated with nowhere better to go
    }
    request.attach_node = target;
    ++moved;
  }
  return moved;
}

}  // namespace socl::workload
