#include "workload/mobility.h"

#include <algorithm>

#include "net/failures.h"

#include <stdexcept>

namespace socl::workload {

void mobility_step(const net::EdgeNetwork& network,
                   std::vector<UserRequest>& requests,
                   const std::vector<double>& weights,
                   const MobilityConfig& config, util::Rng& rng) {
  if (weights.size() != network.num_nodes()) {
    throw std::invalid_argument("mobility_step: weight size mismatch");
  }
  for (auto& request : requests) {
    if (!rng.bernoulli(config.move_prob)) continue;
    const auto neighbors = network.neighbors(request.attach_node);
    if (!neighbors.empty() && rng.bernoulli(config.local_hop_prob)) {
      request.attach_node = neighbors[rng.index(neighbors.size())].neighbor;
    } else {
      request.attach_node =
          static_cast<net::NodeId>(rng.weighted_index(weights));
    }
  }
}

std::vector<std::vector<net::NodeId>> mobility_trajectory(
    const net::EdgeNetwork& network, std::vector<UserRequest> requests,
    const std::vector<double>& weights, const MobilityConfig& config,
    int slots, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<net::NodeId>> trajectory;
  trajectory.reserve(static_cast<std::size_t>(slots));
  for (int slot = 0; slot < slots; ++slot) {
    mobility_step(network, requests, weights, config, rng);
    std::vector<net::NodeId> positions;
    positions.reserve(requests.size());
    for (const auto& request : requests) {
      positions.push_back(request.attach_node);
    }
    trajectory.push_back(std::move(positions));
  }
  return trajectory;
}

void reattach_users(const net::EdgeNetwork& degraded,
                    const std::vector<net::NodeId>& failed_nodes,
                    std::vector<UserRequest>& requests) {
  if (failed_nodes.empty()) return;
  const auto fallback = net::failover_targets(degraded, failed_nodes);
  for (auto& request : requests) {
    const bool failed =
        std::find(failed_nodes.begin(), failed_nodes.end(),
                  request.attach_node) != failed_nodes.end();
    if (!failed) continue;
    const net::NodeId target =
        fallback[static_cast<std::size_t>(request.attach_node)];
    if (target == net::kInvalidNode) {
      throw std::runtime_error("reattach_users: no surviving node");
    }
    request.attach_node = target;
  }
}

}  // namespace socl::workload
