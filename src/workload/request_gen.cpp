#include "workload/request_gen.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace socl::workload {

std::vector<double> attachment_weights(std::size_t num_nodes,
                                       const RequestGenConfig& config,
                                       util::Rng& rng) {
  std::vector<double> weights(num_nodes, 1.0);
  const auto hotspots = static_cast<std::size_t>(
      std::ceil(config.hotspot_fraction * static_cast<double>(num_nodes)));
  std::vector<std::size_t> order(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) order[i] = i;
  rng.shuffle(order);
  for (std::size_t i = 0; i < std::min(hotspots, num_nodes); ++i) {
    weights[order[i]] = config.hotspot_weight;
  }
  return weights;
}

std::vector<UserRequest> generate_requests(const net::EdgeNetwork& network,
                                           const AppCatalog& catalog,
                                           const RequestGenConfig& config,
                                           std::uint64_t seed) {
  if (network.num_nodes() == 0) {
    throw std::invalid_argument("generate_requests: empty network");
  }
  if (config.num_users < 0) {
    throw std::invalid_argument("generate_requests: negative user count");
  }
  util::Rng rng(seed);
  const auto node_weights =
      attachment_weights(network.num_nodes(), config, rng);

  std::vector<double> template_weights;
  template_weights.reserve(catalog.templates().size());
  for (const auto& tpl : catalog.templates()) {
    template_weights.push_back(tpl.weight);
  }

  // Optimistic latency estimate for deadline sizing: per-microservice compute
  // on the fastest server plus one median transfer per chain edge.
  double max_compute = 0.0;
  for (std::size_t k = 0; k < network.num_nodes(); ++k) {
    max_compute = std::max(
        max_compute, network.node(static_cast<net::NodeId>(k)).compute_gflops);
  }
  double rate_sum = 0.0;
  for (std::size_t l = 0; l < network.num_links(); ++l) {
    rate_sum += network.link(static_cast<net::LinkId>(l)).rate_gbps;
  }
  const double mean_rate =
      network.num_links() ? rate_sum / static_cast<double>(network.num_links())
                          : 1.0;

  std::vector<UserRequest> requests;
  requests.reserve(static_cast<std::size_t>(config.num_users));
  for (int h = 0; h < config.num_users; ++h) {
    UserRequest request;
    request.id = h;
    request.attach_node =
        static_cast<net::NodeId>(rng.weighted_index(node_weights));

    const auto& tpl = catalog.templates()[rng.weighted_index(template_weights)];
    request.chain = tpl.chain;
    if (request.chain.size() > 2 && rng.bernoulli(config.truncate_prob)) {
      const auto keep = static_cast<std::size_t>(
          rng.uniform_int(2, static_cast<std::int64_t>(request.chain.size())));
      request.chain.resize(keep);
    }

    request.edge_data.resize(request.chain.size() - 1);
    for (auto& r : request.edge_data) {
      r = rng.uniform(config.data_min, config.data_max);
    }
    request.data_in = rng.uniform(config.data_min, config.data_max);
    request.data_out = rng.uniform(config.data_min, config.data_max * 0.25);

    double estimate = (request.data_in + request.data_out) / mean_rate;
    for (MsId m : request.chain) {
      estimate += catalog.microservice(m).compute_gflop / max_compute;
    }
    for (double r : request.edge_data) estimate += r / mean_rate;
    request.deadline = config.deadline_slack * estimate;

    validate(request, catalog.num_microservices());
    requests.push_back(std::move(request));
  }
  return requests;
}

}  // namespace socl::workload
