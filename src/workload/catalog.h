// Application catalog derived from the eshopOnContainers project of the
// "curated dataset of microservices-based systems" [23] used in the paper's
// evaluation (Section V-A). The catalog fixes the microservice inventory,
// their dependency edges, and the request-chain templates users draw from.
//
// Parameter ranges follow the paper: per-invocation compute in [1, 3] GFLOP,
// chain data flows in [1, 80] data units, per-instance deployment costs
// chosen so that 10-server scenarios land in the paper's 5000-8000 cost
// budget band.
#pragma once

#include <string>
#include <vector>

#include "workload/microservice.h"

namespace socl::workload {

/// A named request-flow template through the application's dependency graph.
struct ChainTemplate {
  std::string name;
  std::vector<MsId> chain;
  /// Relative popularity among generated user requests.
  double weight = 1.0;
};

/// Immutable application description.
class AppCatalog {
 public:
  AppCatalog(std::string name, std::vector<Microservice> microservices,
             std::vector<ChainTemplate> templates);

  const std::string& name() const { return name_; }
  const std::vector<Microservice>& microservices() const {
    return microservices_;
  }
  const Microservice& microservice(MsId m) const {
    return microservices_.at(static_cast<std::size_t>(m));
  }
  int num_microservices() const {
    return static_cast<int>(microservices_.size());
  }
  const std::vector<ChainTemplate>& templates() const { return templates_; }

  /// Total deployment cost of one instance of every microservice
  /// (Σ_i κ(m_i)); the budget bound of Algorithm 2 builds on it.
  double total_single_instance_cost() const;

  /// Maximum storage requirement across microservices.
  double max_storage() const;

 private:
  std::string name_;
  std::vector<Microservice> microservices_;
  std::vector<ChainTemplate> templates_;
};

/// The eshopOnContainers catalog used throughout the evaluation.
const AppCatalog& eshop_catalog();

/// Sock Shop (Weaveworks' microservices demo), another project catalogued
/// by the dataset [23]: front-end, user, catalogue, carts, orders, payment,
/// shipping, queue-master plus stores.
const AppCatalog& sock_shop_catalog();

/// Train Ticket (FudanSELab), the largest open benchmark in the dataset:
/// a 20-service subset covering the booking, payment and notification flows
/// with the longest chains (up to 9 services) — stresses chain routing.
const AppCatalog& train_ticket_catalog();

/// A small three-service catalog for unit tests and the quickstart example.
const AppCatalog& tiny_catalog();

/// All shipped catalogs by name ("eshop", "sockshop", "trainticket",
/// "tiny"); throws std::invalid_argument for unknown names.
const AppCatalog& catalog_by_name(const std::string& name);

}  // namespace socl::workload
