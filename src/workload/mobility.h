// User mobility: users move between edge-server coverage areas over time,
// shifting request trigger locations (challenge ① in Section I). The model
// is a coverage-level random waypoint: each slot a user either stays, hops
// to a neighbouring base station (local movement), or jumps to a random
// hotspot-weighted station (vehicle/transit movement).
#pragma once

#include <cstdint>
#include <vector>

#include "net/graph.h"
#include "util/rng.h"
#include "workload/microservice.h"

namespace socl::workload {

struct MobilityConfig {
  /// Per-slot probability that a user moves at all.
  double move_prob = 0.4;
  /// Given a move, probability it is a local hop to a neighbour station
  /// (otherwise a weighted jump anywhere).
  double local_hop_prob = 0.8;
};

/// Mutates attach nodes of `requests` in place, one simulation slot.
/// `weights` biases non-local jumps (same hotspot weights the generator
/// used). Deterministic in the provided rng stream.
void mobility_step(const net::EdgeNetwork& network,
                   std::vector<UserRequest>& requests,
                   const std::vector<double>& weights,
                   const MobilityConfig& config, util::Rng& rng);

/// Convenience: runs `slots` steps and records the attach-node trajectory of
/// every user (slot-major). Used by trace-replay tests.
std::vector<std::vector<net::NodeId>> mobility_trajectory(
    const net::EdgeNetwork& network, std::vector<UserRequest> requests,
    const std::vector<double>& weights, const MobilityConfig& config,
    int slots, std::uint64_t seed);

/// Moves displaced users onto their nearest usable surviving station
/// (net::failover_targets): users whose attach node failed, and users
/// whose alive attach node was stripped of every usable link by link
/// failures. Healthy attachments are untouched. Returns the number of
/// users actually moved — the honest displaced count (bench_resilience
/// used to under-count by only looking at dead attach nodes). Throws
/// std::runtime_error when a user on a FAILED node has no surviving
/// target; link-isolated users with nowhere better to go stay put and
/// are served locally.
int reattach_users(const net::EdgeNetwork& degraded,
                   const std::vector<net::NodeId>& failed_nodes,
                   std::vector<UserRequest>& requests);

}  // namespace socl::workload
