// Chaos lane: the stochastic failure/repair/flash-crowd process injected
// into the serving day. The SoCL paper's premise is latency-optimized
// serving on an *unreliable* edge substrate; this module makes the day
// unreliable — per-node and per-link Poisson failures, log-normal repair
// times, and flash-crowd arrival spikes — while keeping every run
// bit-reproducible: the whole day is precomputed at construction from one
// seed in fixed iteration order, so the schedule is identical across runs
// and thread counts and the serving loop just looks up its slot.
//
// Failures are expressed as cumulative net::FailurePlans over the HEALTHY
// network's ids (node ids stay stable; apply_failures turns a plan into the
// degraded substrate for Scenario::set_network). A connectivity guard
// rejects candidate failures that would disconnect the survivors — global
// by default, per-metro when a metro map is provided, so a backhaul cut CAN
// isolate a whole metro (the sharded coordinator's job) while each metro
// stays internally routable.
#pragma once

#include <cstdint>
#include <vector>

#include "net/failures.h"
#include "net/graph.h"

namespace socl::serve {

struct ChaosConfig {
  /// Master switch: when false the serving day is exactly the healthy day.
  bool enabled = false;
  /// Per-slot failure probability of each alive node (≈ Poisson intensity
  /// for small values; a node is a Poisson process with this rate).
  double node_failure_rate = 0.02;
  /// Per-slot failure probability of each alive link.
  double link_failure_rate = 0.01;
  /// Median repair time in slots; actual repairs draw log-normal
  /// exp(N(ln median, sigma)), rounded and clamped to >= 1 slot.
  double repair_median_slots = 3.0;
  double repair_sigma = 0.5;
  /// Per-slot probability that a flash crowd starts (when none is active).
  double flash_crowd_rate = 0.08;
  /// Arrival-intensity multiplier while a flash crowd is active.
  double flash_crowd_multiplier = 3.0;
  /// Flash-crowd duration in slots.
  int flash_crowd_slots = 2;
  /// Cap on simultaneously-failed nodes as a fraction of the node count.
  double max_failed_node_fraction = 0.25;
  /// Reject candidate failures that would disconnect the survivors
  /// (globally, or within each metro when a metro map is given).
  bool protect_connectivity = true;
  /// First slot at which anything may fail; the day opens healthy so the
  /// loop builds its baseline plan on the full substrate.
  int first_slot = 2;
};

/// What one slot of the day looks like. `plan` is cumulative — every
/// failure currently outstanding, not just this slot's new ones — so
/// apply_failures(healthy, plan) is the slot's whole substrate.
struct SlotChaos {
  net::FailurePlan plan;
  int nodes_failed_now = 0;
  int links_failed_now = 0;
  int nodes_repaired_now = 0;
  int links_repaired_now = 0;
  /// Arrival-intensity multiplier (1.0 outside flash crowds).
  double flash_multiplier = 1.0;
  /// True when `plan` differs from the previous slot's plan (the serving
  /// loop swaps the substrate and forces a replan exactly on these slots).
  bool changed = false;

  bool degraded() const { return !plan.empty(); }
};

/// Deterministic, seed-keyed failure/repair/flash schedule for a whole
/// serving day. Slots are 1-based to match the serving loop.
class ChaosSchedule {
 public:
  /// `metro_of` (optional, node -> metro index) switches the connectivity
  /// guard from global to per-metro: cross-metro links may then be cut
  /// freely (isolating a metro), but each metro's survivors must stay
  /// internally connected through intra-metro links.
  ChaosSchedule(const net::EdgeNetwork& healthy, const ChaosConfig& config,
                int slots, std::uint64_t seed,
                const std::vector<int>* metro_of = nullptr);

  const SlotChaos& slot(int s) const {
    return schedule_.at(static_cast<std::size_t>(s) - 1);
  }
  int slots() const { return static_cast<int>(schedule_.size()); }

  // Day totals, for socl.chaos.* metrics and schedule non-triviality gates.
  int total_node_failures() const;
  int total_link_failures() const;
  int total_repairs() const;
  int flash_slots() const;
  int degraded_slots() const;

 private:
  std::vector<SlotChaos> schedule_;
};

}  // namespace socl::serve
