#include "serve/serving_loop.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/evaluator.h"
#include "net/failures.h"
#include "obs/sink.h"
#include "serverless/arrivals.h"
#include "util/table.h"
#include "util/timer.h"
#include "validate/validator.h"
#include "workload/request_gen.h"
#include "workload/trace.h"

namespace socl::serve {
namespace {

void fnv_mix(std::uint64_t& h, std::uint64_t value) {
  h ^= value;
  h *= 0x100000001B3ULL;
}

std::uint64_t bits(double value) {
  std::uint64_t out;
  static_assert(sizeof(out) == sizeof(value));
  __builtin_memcpy(&out, &value, sizeof(out));
  return out;
}

/// FNV-1a over everything the control plane sees as demand (same shape as
/// the slot simulator's trace identity).
std::uint64_t demand_fingerprint(
    const std::vector<workload::UserRequest>& requests) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const auto& request : requests) {
    fnv_mix(h, static_cast<std::uint64_t>(request.attach_node));
    fnv_mix(h, request.chain.size());
    for (const workload::MsId m : request.chain) {
      fnv_mix(h, static_cast<std::uint64_t>(m));
    }
    for (const double d : request.edge_data) fnv_mix(h, bits(d));
    fnv_mix(h, bits(request.data_in));
    fnv_mix(h, bits(request.data_out));
    fnv_mix(h, bits(request.deadline));
  }
  return h;
}

/// Scenario factory for the serving loop: the single-substrate path defers
/// to core::make_scenario verbatim; metros > 0 swaps the substrate for a
/// stitched multi-metro topology (same per-metro generator parameters, same
/// request-generation seed schedule) and reports the metro membership map.
core::Scenario make_serving_scenario(const ServingConfig& config,
                                     std::vector<int>& metro_of) {
  if (config.metros <= 0) {
    return core::make_scenario(config.scenario, config.seed);
  }
  net::MultiMetroConfig mm = config.multi_metro;
  mm.metros = config.metros;
  mm.metro = config.scenario.topology;
  mm.metro.num_nodes = config.scenario.num_nodes;
  net::MultiMetroTopology topo = net::make_multi_metro(mm, config.seed);
  metro_of = topo.metro_of;

  const auto& catalog =
      config.scenario.catalog != nullptr
          ? *config.scenario.catalog
          : (config.scenario.use_tiny_catalog ? workload::tiny_catalog()
                                              : workload::eshop_catalog());
  workload::RequestGenConfig reqs = config.scenario.requests;
  reqs.num_users = config.scenario.num_users;
  auto requests = workload::generate_requests(topo.network, catalog, reqs,
                                              config.seed ^ 0x5eedULL);
  return core::Scenario(std::move(topo.network), catalog, std::move(requests),
                        config.scenario.constants);
}

}  // namespace

const char* slot_mode_name(SlotMode mode) {
  switch (mode) {
    case SlotMode::kCarried: return "carried";
    case SlotMode::kIncremental: return "incremental";
    case SlotMode::kReplan: return "replan";
  }
  return "replan";
}

double ServingReport::slo_attainment() const {
  return requests_completed > 0 ? static_cast<double>(slo_met) /
                                      static_cast<double>(requests_completed)
                                : 1.0;
}

double ServingReport::cold_start_rate() const {
  return invocations > 0 ? static_cast<double>(cold_serves) /
                               static_cast<double>(invocations)
                         : 0.0;
}

double ServingReport::recompute_fraction() const {
  return classes_total > 0 ? static_cast<double>(classes_recomputed) /
                                 static_cast<double>(classes_total)
                           : 0.0;
}

double ServingReport::degraded_slo_attainment() const {
  return degraded_requests > 0 ? static_cast<double>(degraded_slo_met) /
                                     static_cast<double>(degraded_requests)
                               : 1.0;
}

void ServingReport::write_csv(const std::string& path) const {
  // The chaos columns are appended only on chaotic days: with chaos
  // disabled the CSV stays byte-identical to the pre-chaos serving CSV
  // (the no-chaos identity gate in bench_chaos pins this).
  std::vector<std::string> columns = {
      "slot", "mode", "classes", "recomputed", "carried",
      "moved_weight_frac", "objective", "deploy_cost",
      "mean_latency_s", "churn", "churn_cost", "prewarm_hits",
      "invocations", "requests", "slo_met", "cold_serves",
      "slo_attainment",
      "cold_start_rate", "intensity", "demand_fingerprint",
      "validator_violations", "full_reroute_matches"};
  if (chaos) {
    columns.insert(columns.end(),
                   {"failed_nodes", "failed_links", "users_rehomed",
                    "flash_multiplier", "substrate_changed"});
  }
  util::Table table(columns);
  for (const SlotReport& s : slots) {
    util::Table& row = table.row();
    row.integer(s.slot)
        .cell(slot_mode_name(s.mode))
        .integer(s.classes)
        .integer(s.classes_recomputed)
        .integer(s.classes_carried)
        .num(s.moved_weight_fraction, 6)
        .num(s.objective, 6)
        .num(s.deployment_cost, 3)
        .num(s.mean_latency_s, 6)
        .integer(s.placement_churn)
        .num(s.churn_cost, 3)
        .integer(s.prewarm_ahead_hits)
        .integer(s.invocations)
        .integer(s.requests_completed)
        .integer(s.slo_met)
        .integer(s.cold_serves)
        .num(s.slo_attainment, 6)
        .num(s.cold_start_rate, 6)
        .num(s.arrival_intensity, 6)
        .cell(std::to_string(s.demand_fingerprint))
        .integer(s.validator_violations)
        .integer(s.full_reroute_matches ? 1 : 0);
    if (chaos) {
      row.integer(s.failed_nodes)
          .integer(s.failed_links)
          .integer(s.users_rehomed)
          .num(s.flash_multiplier, 3)
          .integer(s.substrate_changed ? 1 : 0);
    }
  }
  table.write_csv(path);
}

std::string ServingReport::summary() const {
  std::ostringstream out;
  out << "slots=" << slots.size() << " (replan=" << replans
      << " incremental=" << incremental_slots << " carried=" << carried_slots
      << ")"
      << " classes=" << classes_total << " recomputed=" << classes_recomputed
      << " (fraction=" << recompute_fraction() << ")"
      << " invocations=" << invocations
      << " requests=" << requests_completed << " slo=" << slo_attainment()
      << " cold_rate=" << cold_start_rate() << " churn=" << churn_instances
      << " churn_cost=" << churn_cost
      << " prewarm_hits=" << prewarm_ahead_hits;
  if (shards_resolved > 0 || reprices > 0) {
    out << " shards_resolved=" << shards_resolved
        << " reprices=" << reprices;
  }
  if (chaos) {
    out << " | chaos: node_failures=" << chaos_node_failures
        << " link_failures=" << chaos_link_failures
        << " repairs=" << chaos_repairs
        << " rehomed=" << chaos_users_rehomed
        << " degraded_slots=" << chaos_degraded_slots
        << " flash_slots=" << chaos_flash_slots
        << " degraded_slo=" << degraded_slo_attainment();
  }
  return out.str();
}

ServingLoop::ServingLoop(ServingConfig config)
    : config_(std::move(config)),
      scenario_(make_serving_scenario(config_, metro_of_)),
      mobility_rng_(config_.seed ^ 0x6d0b111e57a75ULL),
      drift_rng_(config_.seed ^ 0xd21f7a57e5ULL),
      cross_metro_rng_(config_.seed ^ 0xc2055e7a11edULL),
      online_(config_.online),
      placement_(scenario_),
      previous_placement_(scenario_),
      assignment_(scenario_) {
  if (config_.cross_metro_prob > 0.0 && config_.metros <= 1) {
    throw std::invalid_argument(
        "ServingLoop: cross_metro_prob needs metros > 1");
  }
  if (config_.sharded && config_.metros < 1) {
    throw std::invalid_argument("ServingLoop: sharded mode needs metros >= 1");
  }
  templates_ = scenario_.requests();
  if (templates_.empty()) {
    throw std::invalid_argument("ServingLoop: empty template workload");
  }
  if (config_.population > 0 &&
      config_.population != static_cast<int>(templates_.size())) {
    scenario_.set_requests(
        workload::replicate_requests(templates_, config_.population));
    assignment_ = core::Assignment(scenario_);
  }

  if (config_.sharded) rebuild_sharded();

  // The mobility model keeps the generator's hotspot bias, as in slot_sim.
  util::Rng weight_rng(config_.seed ^ 0xabcdULL);
  weights_ = workload::attachment_weights(scenario_.network().num_nodes(),
                                          config_.scenario.requests,
                                          weight_rng);

  if (config_.metros > 1) {
    // Per-metro views of the hotspot weights: the cross-metro re-homing
    // process picks its target attach node from the destination metro's
    // slice of the same weight vector the intra-metro mobility uses.
    metro_nodes_.resize(static_cast<std::size_t>(config_.metros));
    metro_weights_.resize(static_cast<std::size_t>(config_.metros));
    for (net::NodeId k = 0; k < scenario_.num_nodes(); ++k) {
      const auto m = static_cast<std::size_t>(
          metro_of_[static_cast<std::size_t>(k)]);
      metro_nodes_[m].push_back(k);
      metro_weights_[m].push_back(weights_[static_cast<std::size_t>(k)]);
    }
  }

  // Diurnal + bursty day profile, normalised to mean 1 over the configured
  // slots so diurnal_amplitude scales deviation without changing the day's
  // total volume.
  const int per_hour = std::max(1, config_.slots_per_hour);
  const int hours = std::max(1, (config_.slots + per_hour - 1) / per_hour);
  auto series = workload::request_volume_series(hours, per_hour, 1.0,
                                                config_.seed ^ 0xda11ULL);
  const int n = std::min<int>(static_cast<int>(series.size()),
                              std::max(1, config_.slots));
  double mean = 0.0;
  for (int i = 0; i < n; ++i) mean += series[static_cast<std::size_t>(i)];
  mean = mean > 0.0 ? mean / n : 1.0;
  day_profile_.resize(series.size());
  for (std::size_t i = 0; i < series.size(); ++i) {
    const double rel = series[i] / mean - 1.0;
    day_profile_[i] = std::max(0.05, 1.0 + config_.diurnal_amplitude * rel);
  }

  const std::size_t cells =
      static_cast<std::size_t>(scenario_.num_microservices()) *
      static_cast<std::size_t>(scenario_.num_nodes());
  prewarm_snapshot_.assign(cells, 0);

  if (config_.chaos.enabled) {
    // Slot 1 must open healthy: the initial workload was generated on the
    // full substrate and advance_workload (which re-homes displaced users)
    // only runs from slot 2.
    config_.chaos.first_slot = std::max(2, config_.chaos.first_slot);
    healthy_network_ = std::make_unique<net::EdgeNetwork>(scenario_.network());
    chaos_ = std::make_unique<ChaosSchedule>(
        *healthy_network_, config_.chaos, config_.slots,
        config_.seed ^ 0xc4a05daaULL,
        metro_of_.empty() ? nullptr : &metro_of_);
    report_.chaos = true;
  }
  last_substrate_epoch_ = scenario_.substrate_epoch();
}

void ServingLoop::rebuild_sharded() {
  // One shard per metro, coordinated through the global Eq. 5 budget.
  // The per-shard solver and warm-rung parameters mirror the legacy
  // OnlineSoCL configuration exactly, so the one-metro sharded day is
  // the unsharded day run through the shard machinery. A freshly built
  // coordinator's first step runs an implicit full solve with
  // repriced = true — the re-price the chaos lane requires on every
  // substrate change.
  shard::ShardedParams sp = config_.shard;
  sp.solver = config_.online.socl;
  sp.online = config_.online;
  sp.warm_serving = true;
  sp.sink = config_.sink;
  sharded_ = std::make_unique<shard::ShardedSoCL>(
      scenario_, shard::plan_from_metros(metro_of_, config_.metros), sp);
}

double ServingLoop::slot_intensity(int slot) const {
  if (day_profile_.empty()) return 1.0;
  return day_profile_[static_cast<std::size_t>(slot - 1) %
                      day_profile_.size()];
}

int ServingLoop::advance_workload() {
  auto requests = scenario_.requests();
  workload::mobility_step(scenario_.network(), requests, weights_,
                          config_.mobility, mobility_rng_);
  if (config_.cross_metro_prob > 0.0 && config_.metros > 1) {
    // Cross-metro re-homing: a commuter leaves its metro entirely and
    // re-attaches at a hotspot-weighted node of a uniformly-picked *other*
    // metro — the churn that moves users between shards. Every user
    // consumes the same RNG draws regardless of outcome (determinism, as
    // in the drift loop below).
    for (auto& request : requests) {
      const bool moves = cross_metro_rng_.bernoulli(config_.cross_metro_prob);
      const auto hop = static_cast<int>(cross_metro_rng_.index(
          static_cast<std::size_t>(config_.metros - 1)));
      const int current =
          metro_of_[static_cast<std::size_t>(request.attach_node)];
      const int target = hop >= current ? hop + 1 : hop;
      const std::size_t local = cross_metro_rng_.weighted_index(
          metro_weights_[static_cast<std::size_t>(target)]);
      if (!moves) continue;
      request.attach_node =
          metro_nodes_[static_cast<std::size_t>(target)][local];
    }
  }
  if (config_.drift_prob > 0.0 && templates_.size() > 1) {
    // Workload drift: a drifting user swaps to another template's demand
    // tuple but keeps its id and attachment, so the class count stays
    // bounded by templates × nodes however large the population. Every user
    // consumes the same RNG draws regardless of outcome (determinism).
    for (auto& request : requests) {
      const bool drifts = drift_rng_.bernoulli(config_.drift_prob);
      const std::size_t pick = drift_rng_.index(templates_.size());
      if (!drifts) continue;
      const workload::UserRequest& tmpl = templates_[pick];
      request.chain = tmpl.chain;
      request.edge_data = tmpl.edge_data;
      request.data_in = tmpl.data_in;
      request.data_out = tmpl.data_out;
      request.deadline = tmpl.deadline;
    }
  }
  if (config_.workload_hook) config_.workload_hook(slot_, requests);
  int rehomed = 0;
  if (chaos_ != nullptr) {
    // Re-home every degraded slot, not only on substrate changes: the
    // mobility/drift processes above can push users back onto a dead or
    // link-isolated station mid-outage. scenario_.network() is already the
    // slot's degraded substrate (the swap happens before advance_workload).
    const SlotChaos& slot_chaos = chaos_->slot(slot_);
    if (slot_chaos.degraded()) {
      rehomed = workload::reattach_users(
          scenario_.network(), slot_chaos.plan.failed_nodes, requests);
    }
  }
  scenario_.set_requests(std::move(requests));
  return rehomed;
}

const ServingLoop::CacheEntry* ServingLoop::find_cached(
    const workload::UserRequest& rep) const {
  const auto it = prev_index_.find(workload::request_fingerprint(rep));
  if (it == prev_index_.end()) return nullptr;
  for (const int i : it->second) {
    const CacheEntry& entry = prev_entries_[static_cast<std::size_t>(i)];
    if (workload::same_request_class(rep, entry.rep)) return &entry;
  }
  return nullptr;
}

void ServingLoop::rebuild_cache_from_assignment() {
  const workload::RequestClasses& classes = scenario_.classes();
  const core::ChainRouter router(scenario_);
  entries_.clear();
  cache_index_.clear();
  entries_.reserve(static_cast<std::size_t>(classes.num_classes()));
  for (int c = 0; c < classes.num_classes(); ++c) {
    const workload::RequestClass& cls = classes.cls(c);
    const workload::UserRequest& rep = scenario_.request(cls.representative);
    const auto route = assignment_.user_route(cls.representative);
    CacheEntry entry;
    entry.rep = rep;
    entry.route.assign(route.begin(), route.end());
    entry.latency = router.completion_time(rep, route);
    cache_index_[cls.fingerprint].push_back(c);
    entries_.push_back(std::move(entry));
  }
}

void ServingLoop::expand_assignment() {
  const workload::RequestClasses& classes = scenario_.classes();
  assignment_ = core::Assignment(scenario_);
  for (int c = 0; c < classes.num_classes(); ++c) {
    const std::vector<net::NodeId>& route =
        entries_[static_cast<std::size_t>(c)].route;
    for (const int member : classes.cls(c).members) {
      assignment_.set_user_route(member, route);
    }
  }
}

SlotReport ServingLoop::step() {
  const obs::ScopedSpan span(config_.sink, obs::Phase::kSim, "serve.slot");
  util::WallTimer control_timer;
  ++slot_;

  SlotReport report;
  report.slot = slot_;
  report.arrival_intensity = slot_intensity(slot_);

  const SlotChaos* chaos_slot = nullptr;
  if (chaos_ != nullptr) {
    chaos_slot = &chaos_->slot(slot_);
    report.failed_nodes =
        static_cast<int>(chaos_slot->plan.failed_nodes.size());
    report.failed_links =
        static_cast<int>(chaos_slot->plan.failed_links.size());
    report.flash_multiplier = chaos_slot->flash_multiplier;
    // Flash crowds fold into the slot's arrival intensity: the DES window
    // below draws its rate from this multiplier.
    report.arrival_intensity *= chaos_slot->flash_multiplier;
    if (chaos_slot->changed) {
      // Failures/repairs landed this slot: swap the substrate before the
      // workload advances, so mobility walks the degraded graph and the
      // re-homing below sees the links that actually exist. A full repair
      // restores the pristine network by copy — apply_failures with an
      // empty plan would drop the links' base parameters.
      scenario_.set_network(chaos_slot->plan.empty()
                                ? *healthy_network_
                                : net::apply_failures(*healthy_network_,
                                                      chaos_slot->plan));
      report.substrate_changed = true;
      // The sharded coordinator priced its shards on the old substrate;
      // rebuilding it forces a global re-price (repriced = true) on the
      // new one — a backhaul cut isolates a metro and its shard's budget
      // share must be re-negotiated.
      if (sharded_ != nullptr) rebuild_sharded();
    }
  }

  if (slot_ > 1) report.users_rehomed = advance_workload();
  const std::uint64_t epoch = scenario_.workload_epoch();
  const bool workload_changed = !have_previous_ || epoch != last_epoch_;
  const bool substrate_moved =
      scenario_.substrate_epoch() != last_substrate_epoch_;

  const workload::RequestClasses& classes = scenario_.classes();
  report.classes = classes.num_classes();
  report.demand_fingerprint = demand_fingerprint(scenario_.requests());
  const double total_weight = std::max(1.0, classes.total_weight());

  // A substrate change always forces the replan rung: carried and
  // incremental routes embed paths computed on the old network, and the
  // tuple cache cannot see a link that vanished under an unchanged demand
  // tuple.
  bool replan = !have_previous_ || substrate_moved;
  bool periodic_replan = false;
  if (config_.full_replan_period > 0 && slot_ > 1 &&
      (slot_ - 1) % config_.full_replan_period == 0) {
    replan = true;
    periodic_replan = true;
  }

  // Diff this slot's classes against the carried route cache: a class whose
  // exact demand tuple is cached needs no routing work at all; everything
  // else "moved" and is the incremental path's work list.
  std::vector<const CacheEntry*> hits;
  int moved = 0;
  if (workload_changed && have_previous_) {
    prev_entries_.swap(entries_);
    prev_index_.swap(cache_index_);
    hits.resize(static_cast<std::size_t>(classes.num_classes()));
    double moved_weight = 0.0;
    for (int c = 0; c < classes.num_classes(); ++c) {
      const workload::RequestClass& cls = classes.cls(c);
      hits[static_cast<std::size_t>(c)] =
          find_cached(scenario_.request(cls.representative));
      if (hits[static_cast<std::size_t>(c)] == nullptr) {
        ++moved;
        moved_weight += cls.weight;
      }
    }
    report.moved_weight_fraction = moved_weight / total_weight;
    if (moved_weight > config_.replan_weight_threshold * total_weight) {
      replan = true;
    }
  } else if (!have_previous_) {
    report.moved_weight_fraction = 1.0;
  }

  bool done = false;
  if (!replan && !workload_changed) {
    // Pure carry: set_requests no-opped (identical tuples), so placement,
    // per-class routes, and the expanded assignment are all still exact.
    report.mode = SlotMode::kCarried;
    report.classes_recomputed = 0;
    done = true;
  }

  if (!replan && !done) {
    // Incremental: the placement is carried, so cached routes stay optimal
    // (the chain DP is a pure function of tuple + placement); only moved
    // classes run the DP. Any moved class unroutable under the carried
    // placement means coverage was lost — fall through to a replan.
    const core::ChainRouter router(scenario_);
    std::vector<CacheEntry> next;
    next.reserve(static_cast<std::size_t>(classes.num_classes()));
    bool routable = true;
    for (int c = 0; c < classes.num_classes() && routable; ++c) {
      const workload::UserRequest& rep =
          scenario_.request(classes.cls(c).representative);
      const CacheEntry* hit = hits[static_cast<std::size_t>(c)];
      CacheEntry entry;
      entry.rep = rep;
      if (hit != nullptr) {
        entry.route = hit->route;
        entry.latency = hit->latency;
      } else {
        auto routed = router.route(rep, placement_, scratch_);
        if (!routed) {
          routable = false;
          break;
        }
        entry.route = std::move(routed->nodes);
        entry.latency = routed->total();
      }
      next.push_back(std::move(entry));
    }
    if (routable) {
      entries_ = std::move(next);
      cache_index_.clear();
      for (int c = 0; c < classes.num_classes(); ++c) {
        cache_index_[classes.cls(c).fingerprint].push_back(c);
      }
      expand_assignment();
      report.mode = moved == 0 ? SlotMode::kCarried : SlotMode::kIncremental;
      report.classes_recomputed = moved;
      done = true;
    } else {
      replan = true;
    }
  }

  if (!done && sharded_ != nullptr) {
    // Sharded replan: feed the slot's workload delta to the coordinator —
    // only the shards whose sub-workload (or membership) moved re-run their
    // warm rung at the frozen budget price; a global re-price happens only
    // on budget drift or breach. Periodic replans force every rung so each
    // shard keeps the legacy staleness-check cadence. Only the merged
    // *placement* is adopted: the serving cache re-routes every class
    // globally below, so a route free to cross the backhaul is found when
    // it wins, and the cross-check lane's full-re-route equality holds by
    // construction (one metro: per-shard routes equal global routes, so
    // this reproduces the unsharded day bit for bit).
    const shard::ShardedSoCL::StepReport shard_step =
        sharded_->step(scenario_.requests(), periodic_replan);
    report.shards_resolved = shard_step.shards_resolved;
    report.repriced = shard_step.repriced;
    if (!shard_step.solution.assignment) {
      throw std::runtime_error(
          "ServingLoop: sharded replan left the slot unroutable (slot " +
          std::to_string(slot_) + ")");
    }
    placement_ = shard_step.solution.placement;
    const core::ChainRouter router(scenario_);
    assignment_ = core::Assignment(scenario_);
    for (int c = 0; c < classes.num_classes(); ++c) {
      const workload::UserRequest& rep =
          scenario_.request(classes.cls(c).representative);
      auto routed = router.route(rep, placement_, scratch_);
      if (!routed) {
        throw std::runtime_error(
            "ServingLoop: merged sharded placement unroutable (slot " +
            std::to_string(slot_) + ")");
      }
      for (const int member : classes.cls(c).members) {
        assignment_.set_user_route(member, routed->nodes);
      }
    }
    rebuild_cache_from_assignment();
    report.mode = SlotMode::kReplan;
    report.classes_recomputed = classes.num_classes();
    done = true;
  }

  if (!done) {
    core::Solution solution = online_.step(scenario_);
    if (!solution.assignment) {
      throw std::runtime_error(
          "ServingLoop: slot unroutable even after a replan (slot " +
          std::to_string(slot_) + ")");
    }
    placement_ = std::move(solution.placement);
    assignment_ = std::move(*solution.assignment);
    rebuild_cache_from_assignment();
    report.mode = SlotMode::kReplan;
    report.classes_recomputed = classes.num_classes();
  }
  report.classes_carried = report.classes - report.classes_recomputed;

  // Slot economics from the class cache (uniform across modes; on replan
  // slots this reproduces the solver's own evaluation).
  report.deployment_cost = placement_.deployment_cost(scenario_.catalog());
  double total_latency = 0.0;
  for (int c = 0; c < classes.num_classes(); ++c) {
    total_latency +=
        entries_[static_cast<std::size_t>(c)].latency * classes.cls(c).weight;
  }
  report.mean_latency_s = total_latency / total_weight;
  const core::Evaluator evaluator(scenario_);
  report.objective = evaluator.combine(report.deployment_cost, total_latency);

  core::PlacementDelta delta;
  if (have_previous_) {
    report.placement_churn =
        core::placement_churn(previous_placement_, placement_);
    delta = core::placement_delta(previous_placement_, placement_);
    for (const auto& [m, k] : delta.added) {
      (void)k;
      report.churn_cost += scenario_.catalog().microservice(m).deploy_cost;
    }
  }
  report.control_s = control_timer.elapsed_seconds();

  if (config_.cross_check) {
    // Forced-full-resolve lane: a from-scratch route of the whole workload
    // must agree bit-for-bit with the incrementally maintained assignment,
    // and the independent validator must find no constraint violation.
    const core::ChainRouter router(scenario_);
    const auto full = router.route_all(placement_);
    bool matches = full.has_value();
    if (matches) {
      for (int h = 0; h < scenario_.num_users() && matches; ++h) {
        const auto a = assignment_.user_route(h);
        const auto b = full->user_route(h);
        matches = std::equal(a.begin(), a.end(), b.begin(), b.end());
      }
    }
    report.full_reroute_matches = matches;
    if (!matches) {
      throw std::logic_error(
          "ServingLoop: incremental assignment diverged from full re-route "
          "(slot " +
          std::to_string(slot_) + ")");
    }
    const validate::SolutionValidator validator(scenario_);
    report.validator_violations = static_cast<int>(
        validator.validate(placement_, assignment_).violations.size());
  }

  // Data plane: one DES window under the slot's placement. Instances the
  // replan added boot cold unless the previous slot's quota snapshot
  // predicted them (prewarm-ahead): those join the carried set and open
  // warm, modelling warm-up commands issued before rollout.
  const serverless::SoCLPrewarmPolicy policy(scenario_);
  {
    serverless::ArrivalConfig arrival_config = config_.arrivals;
    arrival_config.horizon_s = config_.slot_horizon_s;
    arrival_config.mean_rate =
        config_.arrivals.mean_rate * report.arrival_intensity;
    arrival_config.seed =
        config_.seed ^
        (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(slot_)));
    const auto arrivals =
        serverless::generate_arrivals(scenario_.num_users(), arrival_config);

    serverless::ServerlessConfig runtime_config = config_.runtime;
    if (runtime_config.sink == nullptr) runtime_config.sink = config_.sink;
    const serverless::ServerlessRuntime runtime(scenario_, runtime_config);

    core::Placement carried = previous_placement_;
    if (have_previous_ && config_.prewarm_ahead) {
      const auto nodes = static_cast<std::size_t>(scenario_.num_nodes());
      for (const auto& [m, k] : delta.added) {
        const std::size_t idx =
            static_cast<std::size_t>(m) * nodes + static_cast<std::size_t>(k);
        if (prewarm_snapshot_[idx] != 0) {
          carried.deploy(m, k);
          ++report.prewarm_ahead_hits;
        }
      }
    }
    if (chaos_slot != nullptr && chaos_slot->degraded()) {
      // Container pools drain on dead nodes: nothing carried on a
      // currently-failed node may open warm (and a repaired node's pool
      // restarts cold naturally — the previous slot's placement could not
      // host anything there while it was a husk).
      for (const net::NodeId k : chaos_slot->plan.failed_nodes) {
        for (workload::MsId m = 0; m < scenario_.num_microservices(); ++m) {
          if (carried.deployed(m, k)) carried.remove(m, k);
        }
      }
    }
    const std::uint64_t des_seed = arrival_config.seed ^ 0x5E71E55ULL;
    if (sharded_ != nullptr) {
      // Per-metro serverless pools: each metro's control plane simulates
      // its own DES window over its residents' slice of the global arrival
      // stream (split preserves order and per-user streams, so the
      // one-metro split is the unsharded stream verbatim). Metro 0 keeps
      // the legacy seed; pool state is per run — a rare backhaul-crossing
      // route invokes the remote instance under the caller metro's pool,
      // modelling per-region serverless scaling.
      std::vector<int> user_metro(
          static_cast<std::size_t>(scenario_.num_users()), 0);
      for (int h = 0; h < scenario_.num_users(); ++h) {
        user_metro[static_cast<std::size_t>(h)] = metro_of_[
            static_cast<std::size_t>(scenario_.request(h).attach_node)];
      }
      const auto groups = serverless::split_arrivals(
          arrivals, user_metro, std::max(1, config_.metros));
      for (int m = 0; m < std::max(1, config_.metros); ++m) {
        const std::uint64_t metro_seed =
            des_seed ^ (0xA24BAED4963EE407ULL * static_cast<std::uint64_t>(m));
        const auto metrics = runtime.run(
            placement_, assignment_, groups[static_cast<std::size_t>(m)],
            policy, metro_seed, have_previous_ ? &carried : nullptr);
        report.invocations += metrics.totals.invocations;
        report.cold_serves += metrics.totals.cold_serves;
        report.requests_completed +=
            static_cast<std::int64_t>(metrics.requests.size());
        for (const serverless::RequestOutcome& outcome : metrics.requests) {
          if (outcome.total_s() <= scenario_.request(outcome.user).deadline) {
            ++report.slo_met;
          }
        }
        if (config_.sink != nullptr && metrics.totals.invocations > 0) {
          config_.sink->observe(
              "socl.serve.shard.metro_cold_rate",
              static_cast<double>(metrics.totals.cold_serves) /
                  static_cast<double>(metrics.totals.invocations));
        }
      }
    } else {
      const auto metrics =
          runtime.run(placement_, assignment_, arrivals, policy, des_seed,
                      have_previous_ ? &carried : nullptr);
      report.invocations = metrics.totals.invocations;
      report.cold_serves = metrics.totals.cold_serves;
      report.requests_completed =
          static_cast<std::int64_t>(metrics.requests.size());
      for (const serverless::RequestOutcome& outcome : metrics.requests) {
        if (outcome.total_s() <= scenario_.request(outcome.user).deadline) {
          ++report.slo_met;
        }
      }
    }
    report.slo_attainment =
        report.requests_completed > 0
            ? static_cast<double>(report.slo_met) /
                  static_cast<double>(report.requests_completed)
            : 1.0;
    report.cold_start_rate =
        report.invocations > 0
            ? static_cast<double>(report.cold_serves) /
                  static_cast<double>(report.invocations)
            : 0.0;
  }

  // This slot's Alg. 2 quotas become next slot's pre-warm prediction.
  {
    const auto nodes = static_cast<std::size_t>(scenario_.num_nodes());
    for (workload::MsId m = 0; m < scenario_.num_microservices(); ++m) {
      for (net::NodeId k = 0; k < scenario_.num_nodes(); ++k) {
        prewarm_snapshot_[static_cast<std::size_t>(m) * nodes +
                          static_cast<std::size_t>(k)] =
            policy.quota(m, k) > 0 ? 1 : 0;
      }
    }
  }
  previous_placement_ = placement_;
  have_previous_ = true;
  last_epoch_ = epoch;
  last_substrate_epoch_ = scenario_.substrate_epoch();

  emit_metrics(report, chaos_slot);

  report_.slots.push_back(report);
  report_.invocations += report.invocations;
  report_.requests_completed += report.requests_completed;
  report_.slo_met += report.slo_met;
  report_.cold_serves += report.cold_serves;
  report_.classes_total += report.classes;
  report_.classes_recomputed += report.classes_recomputed;
  switch (report.mode) {
    case SlotMode::kCarried: ++report_.carried_slots; break;
    case SlotMode::kIncremental: ++report_.incremental_slots; break;
    case SlotMode::kReplan: ++report_.replans; break;
  }
  report_.churn_instances += report.placement_churn;
  report_.churn_cost += report.churn_cost;
  report_.prewarm_ahead_hits += report.prewarm_ahead_hits;
  report_.shards_resolved += report.shards_resolved;
  if (report.repriced) ++report_.reprices;
  report_.control_s_total += report.control_s;
  if (chaos_slot != nullptr) {
    report_.chaos_node_failures += chaos_slot->nodes_failed_now;
    report_.chaos_link_failures += chaos_slot->links_failed_now;
    report_.chaos_repairs +=
        chaos_slot->nodes_repaired_now + chaos_slot->links_repaired_now;
    report_.chaos_users_rehomed += report.users_rehomed;
    if (chaos_slot->flash_multiplier > 1.0) ++report_.chaos_flash_slots;
    if (chaos_slot->degraded()) {
      ++report_.chaos_degraded_slots;
      report_.degraded_requests += report.requests_completed;
      report_.degraded_slo_met += report.slo_met;
    }
  }
  return report;
}

void ServingLoop::emit_metrics(const SlotReport& report,
                               const SlotChaos* chaos_slot) {
  obs::ObsSink* const sink = config_.sink;
  if (sink == nullptr) return;
  if (chaos_slot != nullptr) {
    sink->add_counter("socl.chaos.node_failures", chaos_slot->nodes_failed_now);
    sink->add_counter("socl.chaos.link_failures", chaos_slot->links_failed_now);
    sink->add_counter("socl.chaos.repairs", chaos_slot->nodes_repaired_now +
                                                chaos_slot->links_repaired_now);
    sink->add_counter("socl.chaos.users_rehomed", report.users_rehomed);
    sink->add_counter("socl.chaos.degraded_slots",
                      chaos_slot->degraded() ? 1 : 0);
    sink->add_counter("socl.chaos.flash_slots",
                      chaos_slot->flash_multiplier > 1.0 ? 1 : 0);
    sink->set_gauge("socl.chaos.failed_nodes", report.failed_nodes);
    sink->set_gauge("socl.chaos.failed_links", report.failed_links);
    if (chaos_slot->degraded()) {
      sink->set_gauge("socl.chaos.degraded_slo_attainment",
                      report.slo_attainment);
    }
  }
  sink->add_counter("socl.serve.slots", 1);
  switch (report.mode) {
    case SlotMode::kCarried:
      sink->add_counter("socl.serve.carried_slots", 1);
      break;
    case SlotMode::kIncremental:
      sink->add_counter("socl.serve.incremental_slots", 1);
      break;
    case SlotMode::kReplan:
      sink->add_counter("socl.serve.replans", 1);
      break;
  }
  sink->add_counter("socl.serve.classes_total", report.classes);
  sink->add_counter("socl.serve.classes_recomputed",
                    report.classes_recomputed);
  sink->add_counter("socl.serve.classes_carried", report.classes_carried);
  sink->add_counter("socl.serve.invocations", report.invocations);
  sink->add_counter("socl.serve.requests", report.requests_completed);
  sink->add_counter("socl.serve.slo_met", report.slo_met);
  sink->add_counter("socl.serve.churn_instances", report.placement_churn);
  sink->add_counter("socl.serve.prewarm_ahead_hits",
                    report.prewarm_ahead_hits);
  sink->set_gauge("socl.serve.slo_attainment", report.slo_attainment);
  sink->set_gauge("socl.serve.cold_start_rate", report.cold_start_rate);
  sink->set_gauge("socl.serve.churn_cost", report.churn_cost);
  sink->set_gauge("socl.serve.objective", report.objective);
  if (sharded_ != nullptr) {
    sink->add_counter("socl.serve.shard.moved_shards", report.shards_resolved);
    sink->add_counter("socl.serve.shard.reprices", report.repriced ? 1 : 0);
  }
  sink->observe("socl.serve.control_latency_s", report.control_s);
}

ServingReport ServingLoop::run() {
  while (slot_ < config_.slots) step();
  return report_;
}

}  // namespace socl::serve
