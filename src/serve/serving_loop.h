// Online serving loop: the control plane that fuses the solver, the
// request-class machinery, and the serverless runtime into one "day in the
// life" at production scale (DESIGN.md §4i).
//
// Each slot the loop (1) advances the workload — mobility churn, template
// drift, and a diurnal + bursty Alibaba-style arrival intensity
// (workload::request_volume_series, the Fig. 4 shape) — then (2) re-solves
// *incrementally*: the per-class route cache is keyed on the exact Eq. 2
// demand tuple (fingerprint-bucketed, exact-equality verified), so only the
// classes whose tuple actually moved are re-routed. Three tiers:
//
//   carried      no tuple moved: placement, routes, and assignment carry
//                over untouched (with the Scenario epoch fix, the slot costs
//                no reindex and no cache rebuild at all);
//   incremental  a small weight fraction moved: the placement is carried and
//                only the moved classes run the chain DP — O(moved classes)
//                control work, bit-identical to a full re-route because
//                carried routes were computed under the same placement;
//   replan       drift crossed the threshold (or the periodic floor): the
//                warm-start online controller (core::online) repairs and
//                polishes the carried placement, falling back to a full SoCL
//                solve as usual.
//
// (3) The slot's placement then serves a DES window (src/serverless/):
// instances churned by a replan pay real cold starts unless the pre-warm
// lookahead predicted them — the loop snapshots SoCLPrewarmPolicy's Alg. 2
// quotas each slot and treats quota instances as pre-warmed one slot ahead,
// modelling a controller that issues warm-up commands for the next slot's
// placement before rollout. Per-slot and cumulative SLO attainment (DES
// end-to-end latency vs D_h^max), cold-start rate, and placement-churn cost
// come back as SlotReport/ServingReport plus `socl.serve.*` metrics
// (docs/METRICS.md) and a CSV series.
//
// Determinism: every field of SlotReport except the wall-clock control
// latency is a pure function of (config, seed) — identical across runs and
// thread counts (the DES and routing determinism contracts carry through;
// test_serving pins it). The optional cross-check lane forces a full
// re-route every slot, asserts it equals the incremental assignment, and
// runs the independent constraint validator (DESIGN.md §4f) — incremental
// serving can never drift from what a from-scratch route would do.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/online.h"
#include "core/routing.h"
#include "net/multi_metro.h"
#include "serve/chaos.h"
#include "serverless/runtime.h"
#include "shard/sharded_solver.h"
#include "util/rng.h"
#include "workload/mobility.h"

namespace socl::obs {
class ObsSink;
}

namespace socl::serve {

/// How the slot's placement decision was produced.
enum class SlotMode {
  kCarried,      ///< no class moved: placement + every route carried over
  kIncremental,  ///< placement carried, only moved classes re-routed
  kReplan,       ///< warm-start (or full) solve via core::online
};

const char* slot_mode_name(SlotMode mode);

struct ServingConfig {
  /// Substrate + template workload. `scenario.num_users` is the template
  /// count; the served population is `population` replicated users.
  core::ScenarioConfig scenario;
  /// Multi-metro mode: when > 0 the substrate is a stitched multi-metro
  /// topology (net::make_multi_metro) instead of `scenario.topology` —
  /// `metros` metros of `scenario.num_nodes` nodes each, generated from
  /// `scenario.topology` per metro, stitched per `multi_metro.backhaul`.
  /// Catalog, request generation, and constants still come from `scenario`.
  int metros = 0;
  /// Spacing/backhaul parameters of the stitched substrate (its `metros`
  /// and `metro` fields are overridden as described above).
  net::MultiMetroConfig multi_metro;
  /// Per-user per-slot probability of re-homing to a different metro
  /// (weighted hotspot attachment inside the target metro) — the churn
  /// process that moves users *between shards* through the dense per-shard
  /// user remap. Requires metros > 1.
  double cross_metro_prob = 0.0;
  /// Route replan slots through shard::ShardedSoCL::step instead of the
  /// single-address-space OnlineSoCL: per-metro warm rungs at the frozen
  /// budget price, global re-price only on budget drift, per-metro DES
  /// windows. Requires metros >= 1. With one metro the day is byte-identical
  /// to the unsharded loop (test_serving pins it via CSV diff).
  bool sharded = false;
  /// Coordinator knobs for sharded mode. `solver`, `online`, warm_serving,
  /// and sink are overridden from this config (single source of truth).
  shard::ShardedParams shard;
  /// Aggregated users actually served (replicate_requests over the template
  /// workload; 0 keeps the template count). Request-class aggregation keeps
  /// the control plane O(templates × nodes) however large this is.
  int population = 0;
  int slots = 24;
  /// Slots per simulated hour (feeds the diurnal intensity series).
  int slots_per_hour = 1;
  /// DES window simulated per slot, in seconds.
  double slot_horizon_s = 60.0;
  workload::MobilityConfig mobility;
  /// Per-user per-slot probability of workload drift: the user swaps to a
  /// different request template (chain, data volumes, deadline), keeping its
  /// id and attach node. Bounded template pool ⇒ bounded class count.
  double drift_prob = 0.0;
  /// Warm-start controller parameters for replan slots.
  core::OnlineParams online;
  /// Replan when the moved-class weight fraction exceeds this; below it the
  /// placement is carried and only moved classes are re-routed.
  double replan_weight_threshold = 0.05;
  /// Force a replan every N slots (0 = only on drift / coverage loss).
  int full_replan_period = 8;
  serverless::ServerlessConfig runtime;
  /// Arrival process template: `mean_rate` is the per-user base rate, scaled
  /// per slot by the diurnal + bursty day profile; `horizon_s` is overridden
  /// by `slot_horizon_s`.
  serverless::ArrivalConfig arrivals;
  /// Scales the day profile's deviation from flat (0 = homogeneous slots).
  double diurnal_amplitude = 1.0;
  /// Pre-warm instances of the next slot's placement from the Alg. 2 quota
  /// snapshot, so predicted rollouts open warm instead of booting cold.
  bool prewarm_ahead = true;
  /// Forced-full-resolve lane: every slot, re-route the whole workload from
  /// scratch, require bit-equality with the incremental assignment, and run
  /// the independent constraint validator. Results land in
  /// SlotReport::{full_reroute_matches, validator_violations}.
  bool cross_check = false;
  /// Chaos lane (DESIGN.md §4l): seed-keyed failure/repair/flash-crowd
  /// schedule injected into the day. Disabled by default; with
  /// `chaos.enabled == false` the day — including its CSV — is byte-for-byte
  /// the healthy day. `chaos.first_slot` is clamped to >= 2 so slot 1 always
  /// builds the baseline plan on the full substrate.
  ChaosConfig chaos;
  std::uint64_t seed = 1;
  /// `socl.serve.*` metrics per slot (docs/METRICS.md); forwarded to the
  /// DES windows when `runtime.sink` is null. nullptr disables.
  obs::ObsSink* sink = nullptr;
  /// Test hook: mutate the slot's requests after mobility/drift and before
  /// the scenario ingests them (e.g. move exactly one user). Runs from slot
  /// 2 onwards. Empty = disabled.
  std::function<void(int slot, std::vector<workload::UserRequest>&)>
      workload_hook;
};

/// One slot of the serving loop. Every field except `control_s` is
/// deterministic in (config, seed).
struct SlotReport {
  int slot = 0;  ///< 1-based
  SlotMode mode = SlotMode::kReplan;
  int classes = 0;
  /// Classes whose demand tuple moved and therefore ran the chain DP this
  /// slot (== `classes` on replan slots, where the solver re-routes all).
  int classes_recomputed = 0;
  int classes_carried = 0;
  /// Σ weight of moved classes / total weight (the replan trigger input).
  double moved_weight_fraction = 0.0;
  double objective = 0.0;
  double deployment_cost = 0.0;
  double mean_latency_s = 0.0;  ///< weighted Eq. 2 mean over classes
  /// Instances added + removed vs the previous slot's placement.
  int placement_churn = 0;
  /// Σ κ(m) over instances *added* this slot (the rollout cost churn pays).
  double churn_cost = 0.0;
  /// Added instances that opened warm because the previous slot's quota
  /// snapshot predicted them (the pre-warm lookahead's hits).
  int prewarm_ahead_hits = 0;
  /// Per-stage container invocations (chain length × requests, roughly).
  std::int64_t invocations = 0;
  /// End-to-end requests that completed inside the DES window.
  std::int64_t requests_completed = 0;
  std::int64_t slo_met = 0;      ///< completed requests with total <= D_h^max
  std::int64_t cold_serves = 0;  ///< invocations that waited on a boot
  double slo_attainment = 1.0;   ///< slo_met / requests (1.0 when idle)
  double cold_start_rate = 0.0;  ///< cold_serves / invocations
  /// Diurnal + burst intensity multiplier applied to the arrival rate.
  double arrival_intensity = 1.0;
  /// FNV-1a over the slot's demand (decision-independent trace identity).
  std::uint64_t demand_fingerprint = 0;
  /// Cross-check lane results; -1 / true when the lane is disabled.
  int validator_violations = -1;
  bool full_reroute_matches = true;
  /// Sharded-mode bookkeeping (0 / false outside sharded replans). Excluded
  /// from the CSV so sharded and unsharded series stay column-comparable.
  int shards_resolved = 0;
  bool repriced = false;
  /// Chaos-lane state of the slot (all neutral when chaos is disabled;
  /// the CSV grows these columns only when chaos is enabled, keeping the
  /// healthy day's CSV byte-identical to the pre-chaos one).
  int failed_nodes = 0;       ///< nodes down during the slot (cumulative)
  int failed_links = 0;       ///< explicitly failed links during the slot
  int users_rehomed = 0;      ///< users moved off dead/isolated stations
  double flash_multiplier = 1.0;
  bool substrate_changed = false;  ///< failures/repairs landed this slot
  /// Wall-clock control-plane latency (workload ingest → assignment ready).
  /// The one non-deterministic field; excluded from the CSV series.
  double control_s = 0.0;
};

/// Whole-day accounting plus the CSV/summary exports.
struct ServingReport {
  std::vector<SlotReport> slots;

  std::int64_t invocations = 0;
  std::int64_t requests_completed = 0;
  std::int64_t slo_met = 0;
  std::int64_t cold_serves = 0;
  std::int64_t classes_total = 0;
  std::int64_t classes_recomputed = 0;
  int carried_slots = 0;
  int incremental_slots = 0;
  int replans = 0;
  int churn_instances = 0;
  double churn_cost = 0.0;
  int prewarm_ahead_hits = 0;
  /// Sharded-mode totals (0 when unsharded).
  int shards_resolved = 0;
  int reprices = 0;
  double control_s_total = 0.0;
  /// Chaos-lane day totals (all zero with chaos disabled). `chaos` gates
  /// the extra CSV columns.
  bool chaos = false;
  int chaos_node_failures = 0;
  int chaos_link_failures = 0;
  int chaos_repairs = 0;
  int chaos_users_rehomed = 0;
  int chaos_degraded_slots = 0;
  int chaos_flash_slots = 0;
  /// SLO accounting restricted to degraded slots — the availability story:
  /// how much service quality survives while failures are outstanding.
  std::int64_t degraded_requests = 0;
  std::int64_t degraded_slo_met = 0;

  double slo_attainment() const;
  double cold_start_rate() const;
  /// SLO attainment over degraded slots only (1.0 when the day never
  /// degraded — vacuous availability).
  double degraded_slo_attainment() const;
  /// Σ recomputed / Σ classes — how much of the day's routing work the
  /// incremental path actually performed (1.0 = every slot replanned).
  double recompute_fraction() const;

  /// Per-slot CSV series (deterministic columns only — no wall-clock).
  void write_csv(const std::string& path) const;
  std::string summary() const;
};

/// The controller. Owns its scenario; step() advances one slot, run()
/// finishes the configured day.
class ServingLoop {
 public:
  explicit ServingLoop(ServingConfig config);

  /// Advances one slot: workload → placement decision → DES window.
  /// Throws std::runtime_error if the slot is unroutable even after a
  /// replan, and std::logic_error when the cross-check lane finds the
  /// incremental assignment diverging from a full re-route.
  SlotReport step();

  /// Runs the remaining slots up to config().slots.
  ServingReport run();

  int slot() const { return slot_; }
  const ServingConfig& config() const { return config_; }
  const core::Scenario& scenario() const { return scenario_; }
  const core::Placement& placement() const { return placement_; }
  /// metro_of[node]; empty in single-substrate (metros == 0) mode.
  const std::vector<int>& metro_of() const { return metro_of_; }

 private:
  struct CacheEntry {
    workload::UserRequest rep;  ///< exact tuple identity (not just the hash)
    std::vector<net::NodeId> route;
    double latency = 0.0;
  };

  /// Returns the number of users re-homed off dead/isolated stations
  /// (always 0 outside degraded chaos slots).
  int advance_workload();
  /// (Re)creates the sharded coordinator against the current scenario —
  /// used at construction and on every substrate change.
  void rebuild_sharded();
  /// Fingerprint-bucketed exact lookup into the previous slot's cache.
  const CacheEntry* find_cached(const workload::UserRequest& rep) const;
  void rebuild_cache_from_assignment();
  void expand_assignment();
  void emit_metrics(const SlotReport& report, const SlotChaos* chaos_slot);
  double slot_intensity(int slot) const;

  ServingConfig config_;
  /// metro_of[node] of the stitched substrate; filled before scenario_ in
  /// the init list (declaration order matters) and empty when metros == 0.
  std::vector<int> metro_of_;
  core::Scenario scenario_;
  std::vector<workload::UserRequest> templates_;
  std::vector<double> weights_;      ///< hotspot attachment weights
  std::vector<double> day_profile_;  ///< per-slot intensity multipliers
  /// Per-metro node lists and hotspot weights (cross-metro re-homing picks
  /// a weighted attach node inside the target metro). Empty when metros <= 1.
  std::vector<std::vector<net::NodeId>> metro_nodes_;
  std::vector<std::vector<double>> metro_weights_;
  util::Rng mobility_rng_;
  util::Rng drift_rng_;
  util::Rng cross_metro_rng_;
  core::OnlineSoCL online_;
  /// Sharded replan engine (null unless config.sharded). Recreated on every
  /// substrate change: a fresh coordinator's first step runs an implicit
  /// full solve with repriced = true — the required re-price on substrate
  /// change.
  std::unique_ptr<shard::ShardedSoCL> sharded_;
  core::RouteScratch scratch_;

  /// Chaos lane (both null when chaos is disabled). `healthy_network_` is
  /// the pristine substrate: full repair restores it by copy rather than
  /// via apply_failures(empty plan), which would drop base_bandwidth /
  /// channel_gain of the links.
  std::unique_ptr<net::EdgeNetwork> healthy_network_;
  std::unique_ptr<ChaosSchedule> chaos_;
  std::uint64_t last_substrate_epoch_ = 0;

  int slot_ = 0;
  /// Epoch of the workload the carried routes/assignment were built for; a
  /// slot whose set_requests() no-ops (same tuples) keeps it and skips even
  /// the assignment re-expansion.
  std::uint64_t last_epoch_ = 0;
  core::Placement placement_;
  core::Placement previous_placement_;
  bool have_previous_ = false;
  core::Assignment assignment_;
  /// Current slot's per-class entries (class-index order) and the
  /// fingerprint index over them, matched against next slot's classes.
  std::vector<CacheEntry> entries_;
  std::unordered_map<std::uint64_t, std::vector<int>> cache_index_;
  std::vector<CacheEntry> prev_entries_;
  std::unordered_map<std::uint64_t, std::vector<int>> prev_index_;
  /// Alg. 2 quota snapshot from the previous slot (ms × nodes), the
  /// pre-warm lookahead's prediction of where demand concentrates next.
  std::vector<std::uint8_t> prewarm_snapshot_;

  ServingReport report_;
};

}  // namespace socl::serve
