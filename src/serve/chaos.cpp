#include "serve/chaos.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.h"

namespace socl::serve {
namespace {

/// Outstanding failure state while rolling the day forward. The link mask
/// counts contributions (explicit failure + each failed endpoint) so
/// reviving a node cannot accidentally resurrect an explicitly-failed link.
struct DayState {
  std::vector<std::uint8_t> node_failed;   // 0/1
  std::vector<std::uint8_t> link_down;     // contribution count
  std::vector<std::uint8_t> link_failed;   // 0/1, explicit link failures
  std::vector<int> node_repair_slot;       // 0 = alive
  std::vector<int> link_repair_slot;
};

net::FailureMasks masks_of(const DayState& state) {
  net::FailureMasks masks;
  masks.node = state.node_failed;
  masks.link.assign(state.link_down.size(), 0);
  for (std::size_t l = 0; l < state.link_down.size(); ++l) {
    masks.link[l] = state.link_down[l] != 0 ? 1 : 0;
  }
  return masks;
}

}  // namespace

ChaosSchedule::ChaosSchedule(const net::EdgeNetwork& healthy,
                             const ChaosConfig& config, int slots,
                             std::uint64_t seed,
                             const std::vector<int>* metro_of) {
  if (slots < 0) throw std::invalid_argument("ChaosSchedule: negative slots");
  if (metro_of != nullptr && metro_of->size() != healthy.num_nodes()) {
    throw std::invalid_argument("ChaosSchedule: metro map size mismatch");
  }
  schedule_.resize(static_cast<std::size_t>(slots));
  if (!config.enabled || slots == 0 || healthy.num_nodes() == 0) return;

  util::Rng rng(seed);
  DayState state;
  state.node_failed.assign(healthy.num_nodes(), 0);
  state.link_down.assign(healthy.num_links(), 0);
  state.link_failed.assign(healthy.num_links(), 0);
  state.node_repair_slot.assign(healthy.num_nodes(), 0);
  state.link_repair_slot.assign(healthy.num_links(), 0);

  const auto node_cap = static_cast<int>(
      config.max_failed_node_fraction *
      static_cast<double>(healthy.num_nodes()));
  int nodes_down = 0;

  // A candidate failure survives the guard when every metro's survivors
  // stay mutually reachable (or, without a metro map, when all survivors
  // do). Nodes outside the metro under test are masked out, so only
  // intra-metro links count — a backhaul cut isolates a metro without
  // tripping the guard.
  const auto guard_ok = [&]() {
    if (!config.protect_connectivity) return true;
    const net::FailureMasks masks = masks_of(state);
    if (metro_of == nullptr) {
      return net::survivors_connected(healthy, masks);
    }
    const int metros =
        1 + *std::max_element(metro_of->begin(), metro_of->end());
    for (int m = 0; m < metros; ++m) {
      net::FailureMasks scoped = masks;
      for (std::size_t k = 0; k < scoped.node.size(); ++k) {
        if ((*metro_of)[k] != m) scoped.node[k] = 1;
      }
      if (!net::survivors_connected(healthy, scoped)) return false;
    }
    return true;
  };

  const auto repair_delay = [&]() {
    const double draw = std::exp(
        rng.normal(std::log(config.repair_median_slots), config.repair_sigma));
    return std::max(1, static_cast<int>(std::lround(draw)));
  };

  const auto fail_node = [&](net::NodeId k) {
    state.node_failed[static_cast<std::size_t>(k)] = 1;
    for (const auto& [neighbor, link] : healthy.neighbors(k)) {
      (void)neighbor;
      state.link_down[static_cast<std::size_t>(link)] += 1;
    }
  };
  const auto revive_node = [&](net::NodeId k) {
    state.node_failed[static_cast<std::size_t>(k)] = 0;
    for (const auto& [neighbor, link] : healthy.neighbors(k)) {
      (void)neighbor;
      state.link_down[static_cast<std::size_t>(link)] -= 1;
    }
  };

  int flash_remaining = 0;
  for (int s = 1; s <= slots; ++s) {
    SlotChaos& slot = schedule_[static_cast<std::size_t>(s) - 1];

    if (s >= config.first_slot) {
      // Repairs first: a server that comes back this slot can host again
      // (and pays its cold starts) before new failures are drawn.
      for (std::size_t k = 0; k < state.node_repair_slot.size(); ++k) {
        if (state.node_repair_slot[k] != s) continue;
        state.node_repair_slot[k] = 0;
        revive_node(static_cast<net::NodeId>(k));
        --nodes_down;
        ++slot.nodes_repaired_now;
      }
      for (std::size_t l = 0; l < state.link_repair_slot.size(); ++l) {
        if (state.link_repair_slot[l] != s) continue;
        state.link_repair_slot[l] = 0;
        state.link_failed[l] = 0;
        state.link_down[l] -= 1;
        ++slot.links_repaired_now;
      }

      // New node failures: fixed id order keeps the stream deterministic.
      for (std::size_t k = 0; k < state.node_failed.size(); ++k) {
        if (state.node_failed[k] != 0) continue;
        if (!rng.bernoulli(config.node_failure_rate)) continue;
        if (nodes_down >= node_cap) continue;  // draw consumed, cap binds
        fail_node(static_cast<net::NodeId>(k));
        if (!guard_ok()) {
          revive_node(static_cast<net::NodeId>(k));
          continue;
        }
        ++nodes_down;
        ++slot.nodes_failed_now;
        state.node_repair_slot[k] = s + repair_delay();
      }
      // New link failures (skipping links already down with an endpoint).
      for (std::size_t l = 0; l < state.link_failed.size(); ++l) {
        if (state.link_down[l] != 0) continue;
        if (!rng.bernoulli(config.link_failure_rate)) continue;
        state.link_failed[l] = 1;
        state.link_down[l] += 1;
        if (!guard_ok()) {
          state.link_failed[l] = 0;
          state.link_down[l] -= 1;
          continue;
        }
        ++slot.links_failed_now;
        state.link_repair_slot[l] = s + repair_delay();
      }

      // Flash crowds: at most one active at a time, lasting
      // flash_crowd_slots slots from the slot the draw lands on.
      if (flash_remaining == 0 && rng.bernoulli(config.flash_crowd_rate)) {
        flash_remaining = config.flash_crowd_slots;
      }
      if (flash_remaining > 0) {
        slot.flash_multiplier = config.flash_crowd_multiplier;
        --flash_remaining;
      }
    }

    for (std::size_t k = 0; k < state.node_failed.size(); ++k) {
      if (state.node_failed[k] != 0) {
        slot.plan.failed_nodes.push_back(static_cast<net::NodeId>(k));
      }
    }
    for (std::size_t l = 0; l < state.link_failed.size(); ++l) {
      if (state.link_failed[l] != 0) {
        slot.plan.failed_links.push_back(static_cast<net::LinkId>(l));
      }
    }
    slot.changed =
        s == 1 ? !slot.plan.empty()
               : slot.plan.failed_nodes !=
                         schedule_[static_cast<std::size_t>(s) - 2]
                             .plan.failed_nodes ||
                     slot.plan.failed_links !=
                         schedule_[static_cast<std::size_t>(s) - 2]
                             .plan.failed_links;
  }
}

int ChaosSchedule::total_node_failures() const {
  int total = 0;
  for (const SlotChaos& s : schedule_) total += s.nodes_failed_now;
  return total;
}

int ChaosSchedule::total_link_failures() const {
  int total = 0;
  for (const SlotChaos& s : schedule_) total += s.links_failed_now;
  return total;
}

int ChaosSchedule::total_repairs() const {
  int total = 0;
  for (const SlotChaos& s : schedule_) {
    total += s.nodes_repaired_now + s.links_repaired_now;
  }
  return total;
}

int ChaosSchedule::flash_slots() const {
  int total = 0;
  for (const SlotChaos& s : schedule_) {
    if (s.flash_multiplier > 1.0) ++total;
  }
  return total;
}

int ChaosSchedule::degraded_slots() const {
  int total = 0;
  for (const SlotChaos& s : schedule_) {
    if (s.degraded()) ++total;
  }
  return total;
}

}  // namespace socl::serve
