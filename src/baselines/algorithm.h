// Common interface for provisioning algorithms so the benches and the
// simulator can sweep {RP, JDR, GC-OG, SoCL, OPT} uniformly. Every solver
// returns a core::Solution whose evaluation is produced by the shared
// Evaluator, so comparisons differ only in placement/routing decisions.
#pragma once

#include <memory>
#include <string>

#include "core/socl.h"

namespace socl::baselines {

class ProvisioningAlgorithm {
 public:
  virtual ~ProvisioningAlgorithm() = default;
  virtual std::string name() const = 0;
  virtual core::Solution solve(const core::Scenario& scenario) const = 0;
};

/// Adapter exposing SoCL through the baseline interface.
class SoCLAlgorithm final : public ProvisioningAlgorithm {
 public:
  explicit SoCLAlgorithm(core::SoCLParams params = {})
      : socl_(std::move(params)) {}
  std::string name() const override { return "SoCL"; }
  core::Solution solve(const core::Scenario& scenario) const override {
    return socl_.solve(scenario);
  }

 private:
  core::SoCL socl_;
};

}  // namespace socl::baselines
