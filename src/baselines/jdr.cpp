#include "baselines/jdr.h"

#include <algorithm>

#include "util/timer.h"

namespace socl::baselines {

using core::MsId;
using core::NodeId;

core::Assignment jdr_routing(const core::Scenario& scenario,
                             const core::Placement& placement,
                             int single_user_threshold) {
  std::vector<int> user_count(
      static_cast<std::size_t>(scenario.num_microservices()), 0);
  for (const auto& request : scenario.requests()) {
    for (const MsId m : request.chain) {
      ++user_count[static_cast<std::size_t>(m)];
    }
  }
  core::Assignment assignment(scenario);
  for (const auto& request : scenario.requests()) {
    for (std::size_t pos = 0; pos < request.chain.size(); ++pos) {
      const MsId m = request.chain[pos];
      const auto hosts = placement.nodes_of(m);
      if (hosts.empty()) continue;  // left invalid; caller handles
      NodeId chosen = hosts.front();
      if (user_count[static_cast<std::size_t>(m)] <= single_user_threshold) {
        // Single-user: nearest instance to the user.
        double best_rate = -1.0;
        for (const NodeId k : hosts) {
          const double rate = scenario.vlinks().rate(request.attach_node, k);
          if (rate > best_rate) {
            best_rate = rate;
            chosen = k;
          }
        }
      } else {
        // Multi-user: highest-capacity server, proximity as tie-break only.
        double best_capacity = -1.0;
        for (const NodeId k : hosts) {
          const double capacity = scenario.network().node(k).compute_gflops;
          if (capacity > best_capacity) {
            best_capacity = capacity;
            chosen = k;
          }
        }
      }
      assignment.set(request.id, static_cast<int>(pos), chosen);
    }
  }
  return assignment;
}

core::Solution Jdr::solve(const core::Scenario& scenario) const {
  util::WallTimer timer;
  const auto& catalog = scenario.catalog();
  const auto& network = scenario.network();

  core::Placement placement(scenario);

  auto has_room = [&](MsId m, NodeId k) {
    return catalog.microservice(m).storage <=
           network.node(k).storage_units -
               placement.storage_used(catalog, k) + 1e-9;
  };
  auto under_budget = [&](MsId m) {
    return placement.deployment_cost(catalog) +
               catalog.microservice(m).deploy_cost <=
           scenario.constants().budget + 1e-9;
  };

  // Nodes by descending compute capacity (the "high-capacity servers").
  std::vector<NodeId> by_capacity(static_cast<std::size_t>(
      scenario.num_nodes()));
  for (NodeId k = 0; k < scenario.num_nodes(); ++k) {
    by_capacity[static_cast<std::size_t>(k)] = k;
  }
  std::sort(by_capacity.begin(), by_capacity.end(), [&](NodeId a, NodeId b) {
    return network.node(a).compute_gflops > network.node(b).compute_gflops;
  });

  // Categorise by requesting-user count.
  std::vector<int> user_count(
      static_cast<std::size_t>(scenario.num_microservices()), 0);
  for (const auto& request : scenario.requests()) {
    for (const MsId m : request.chain) {
      ++user_count[static_cast<std::size_t>(m)];
    }
  }

  // Feasibility floor first: one instance of every requested service on the
  // strongest node with room, so later replication cannot starve a service
  // of its only instance.
  for (MsId m = 0; m < scenario.num_microservices(); ++m) {
    if (scenario.demand_nodes(m).empty()) continue;
    for (const NodeId k : by_capacity) {
      if (has_room(m, k)) {
        placement.deploy(m, k);
        break;
      }
    }
  }

  for (MsId m = 0; m < scenario.num_microservices(); ++m) {
    const auto& demand = scenario.demand_nodes(m);
    if (demand.empty()) continue;
    if (user_count[static_cast<std::size_t>(m)] <= single_user_threshold_) {
      // Single-user: deploy right at (or as close as possible to) the
      // demanding node.
      for (const NodeId k : demand) {
        if (under_budget(m) && has_room(m, k)) {
          placement.deploy(m, k);
        } else {
          // Nearest alternative by virtual rate.
          std::vector<NodeId> alt(by_capacity);
          std::sort(alt.begin(), alt.end(), [&](NodeId a, NodeId b) {
            return scenario.vlinks().rate(k, a) > scenario.vlinks().rate(k, b);
          });
          for (const NodeId q : alt) {
            if (under_budget(m) && has_room(m, q) &&
                !placement.deployed(m, q)) {
              placement.deploy(m, q);
              break;
            }
          }
        }
      }
    } else {
      // Multi-user: prioritise high-capacity servers, one replica per
      // distinct demand region up to the demand-node count.
      std::size_t replicas = 0;
      for (const NodeId k : by_capacity) {
        if (replicas >= demand.size()) break;
        if (under_budget(m) && has_room(m, k) && !placement.deployed(m, k)) {
          placement.deploy(m, k);
          ++replicas;
        }
      }
    }
  }

  // Spend leftover budget on replicas of the most-requested services near
  // demand (latency-first, cost-blind — the paper's redundancy criticism).
  std::vector<MsId> by_demand;
  for (MsId m = 0; m < scenario.num_microservices(); ++m) {
    if (!scenario.demand_nodes(m).empty()) by_demand.push_back(m);
  }
  std::sort(by_demand.begin(), by_demand.end(), [&](MsId a, MsId b) {
    return user_count[static_cast<std::size_t>(a)] >
           user_count[static_cast<std::size_t>(b)];
  });
  bool placed_any = true;
  while (placed_any) {
    placed_any = false;
    for (const MsId m : by_demand) {
      for (const NodeId k : scenario.demand_nodes(m)) {
        if (!placement.deployed(m, k) && under_budget(m) && has_room(m, k)) {
          placement.deploy(m, k);
          placed_any = true;
          break;
        }
      }
    }
  }

  core::Solution solution{placement, std::nullopt, {}, 0.0, {}};
  const core::Evaluator evaluator(scenario);
  core::Assignment routed =
      jdr_routing(scenario, placement, single_user_threshold_);
  if (routed.consistent_with(scenario, placement)) {
    solution.assignment = std::move(routed);
    solution.evaluation = evaluator.evaluate(placement, *solution.assignment);
  } else {
    solution.assignment = evaluator.router().route_all(placement);
    solution.evaluation =
        solution.assignment
            ? evaluator.evaluate(placement, *solution.assignment)
            : evaluator.evaluate(placement);
  }
  solution.runtime_seconds = timer.elapsed_seconds();
  return solution;
}

}  // namespace socl::baselines
