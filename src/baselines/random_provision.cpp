#include "baselines/random_provision.h"

#include "util/rng.h"
#include "util/timer.h"

namespace socl::baselines {

using core::MsId;
using core::NodeId;

core::Assignment random_routing(const core::Scenario& scenario,
                                const core::Placement& placement,
                                util::Rng& rng) {
  core::Assignment assignment(scenario);
  for (const auto& request : scenario.requests()) {
    for (std::size_t pos = 0; pos < request.chain.size(); ++pos) {
      const auto hosts = placement.nodes_of(request.chain[pos]);
      if (hosts.empty()) continue;
      assignment.set(request.id, static_cast<int>(pos),
                     hosts[rng.index(hosts.size())]);
    }
  }
  return assignment;
}

core::Solution RandomProvision::solve(const core::Scenario& scenario) const {
  util::WallTimer timer;
  util::Rng rng(seed_);
  const auto& catalog = scenario.catalog();
  const auto& network = scenario.network();

  core::Placement placement(scenario);

  // Feasibility floor: every requested microservice gets one random host
  // with storage room.
  for (MsId m = 0; m < scenario.num_microservices(); ++m) {
    if (scenario.demand_nodes(m).empty()) continue;
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto k =
          static_cast<NodeId>(rng.index(static_cast<std::size_t>(
              scenario.num_nodes())));
      const double room = network.node(k).storage_units -
                          placement.storage_used(catalog, k);
      if (catalog.microservice(m).storage <= room + 1e-9) {
        placement.deploy(m, k);
        break;
      }
    }
    if (placement.instance_count(m) == 0) {
      // Degenerate storage: fall back to the first node with room.
      for (NodeId k = 0; k < scenario.num_nodes(); ++k) {
        const double room = network.node(k).storage_units -
                            placement.storage_used(catalog, k);
        if (catalog.microservice(m).storage <= room + 1e-9) {
          placement.deploy(m, k);
          break;
        }
      }
    }
  }

  // Spend the rest of the budget on random pairs.
  std::vector<std::pair<MsId, NodeId>> pairs;
  for (MsId m = 0; m < scenario.num_microservices(); ++m) {
    if (scenario.demand_nodes(m).empty()) continue;
    for (NodeId k = 0; k < scenario.num_nodes(); ++k) {
      pairs.emplace_back(m, k);
    }
  }
  rng.shuffle(pairs);
  for (const auto& [m, k] : pairs) {
    if (placement.deployed(m, k)) continue;
    const double cost = placement.deployment_cost(catalog) +
                        catalog.microservice(m).deploy_cost;
    if (cost > scenario.constants().budget) continue;
    const double room = network.node(k).storage_units -
                        placement.storage_used(catalog, k);
    if (catalog.microservice(m).storage > room + 1e-9) continue;
    placement.deploy(m, k);
  }

  // Random routing: each chain position picks a uniformly random host.
  core::Assignment assignment = random_routing(scenario, placement, rng);
  const bool routable = assignment.consistent_with(scenario, placement);

  core::Solution solution{placement, std::nullopt, {}, 0.0, {}};
  const core::Evaluator evaluator(scenario);
  if (routable) {
    solution.assignment = assignment;
    solution.evaluation = evaluator.evaluate(placement, assignment);
  } else {
    solution.evaluation = evaluator.evaluate(placement);
  }
  solution.runtime_seconds = timer.elapsed_seconds();
  return solution;
}

}  // namespace socl::baselines
