// JDR — Joint Deployment and Routing baseline, modelled on Peng et al. [11]
// as the paper describes it (Section V-B): microservices are categorised
// into single-user and multi-user groups; single-user services are deployed
// close to their user's node, multi-user services are prioritised onto
// high-capacity servers, and the remaining budget is spent on extra replicas
// of the most-demanded services. Routing is latency-optimal given the
// placement. By neglecting provisioning cost the strategy over-replicates,
// which is exactly the redundancy the paper reports.
#pragma once

#include "baselines/algorithm.h"

namespace socl::baselines {

/// JDR's own routing rule: microservices requested by a single user are
/// served as close to that user as possible; multi-user microservices are
/// routed to the highest-capacity hosting server (the scheme's
/// "prioritise high-capacity servers" criterion), ignoring path length —
/// the dependency-blindness the paper criticises.
core::Assignment jdr_routing(const core::Scenario& scenario,
                             const core::Placement& placement,
                             int single_user_threshold = 1);

class Jdr final : public ProvisioningAlgorithm {
 public:
  /// Services requested by at most this many users count as "single-user".
  explicit Jdr(int single_user_threshold = 1)
      : single_user_threshold_(single_user_threshold) {}
  std::string name() const override { return "JDR"; }
  core::Solution solve(const core::Scenario& scenario) const override;

 private:
  int single_user_threshold_;
};

}  // namespace socl::baselines
