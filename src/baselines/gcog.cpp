#include "baselines/gcog.h"

#include <limits>

#include "util/timer.h"

namespace socl::baselines {

using core::MsId;
using core::NodeId;

core::Solution GreedyCombine::solve(const core::Scenario& scenario) const {
  util::WallTimer timer;
  const core::Evaluator evaluator(scenario);

  // Dense start: deploy every requested microservice on all demand nodes.
  core::Placement placement(scenario);
  for (MsId m = 0; m < scenario.num_microservices(); ++m) {
    for (const NodeId k : scenario.demand_nodes(m)) {
      placement.deploy(m, k);
    }
  }

  double current = evaluator.evaluate(placement).objective;
  const double budget = scenario.constants().budget;

  for (;;) {
    // Exhaustive scan: try removing every instance, keep the best move.
    double best_objective = std::numeric_limits<double>::infinity();
    MsId best_m = workload::kInvalidMs;
    NodeId best_k = net::kInvalidNode;
    for (MsId m = 0; m < scenario.num_microservices(); ++m) {
      if (placement.instance_count(m) <= 1) continue;
      for (NodeId k = 0; k < scenario.num_nodes(); ++k) {
        if (!placement.deployed(m, k)) continue;
        placement.remove(m, k);
        const auto eval = evaluator.evaluate(placement);
        placement.deploy(m, k);
        if (!eval.routable || eval.deadline_violations > 0) continue;
        if (eval.objective < best_objective) {
          best_objective = eval.objective;
          best_m = m;
          best_k = k;
        }
      }
    }
    if (best_m == workload::kInvalidMs) break;

    const bool over_budget =
        placement.deployment_cost(scenario.catalog()) > budget;
    if (best_objective >= current && !over_budget) break;
    placement.remove(best_m, best_k);
    current = best_objective;
  }

  core::Solution solution{placement, std::nullopt, {}, 0.0, {}};
  solution.assignment = evaluator.router().route_all(placement);
  solution.evaluation =
      solution.assignment
          ? evaluator.evaluate(placement, *solution.assignment)
          : evaluator.evaluate(placement);
  solution.runtime_seconds = timer.elapsed_seconds();
  return solution;
}

}  // namespace socl::baselines
