// GC-OG — Greedy Combine with Objective Gradient baseline (Section V-B).
//
// Starts from the dense placement (every demand node hosts its requested
// microservices) and greedily removes, at every step, the single instance
// whose removal most reduces the exact objective, re-evaluating every
// candidate with the exact router each round. Effective at small scales but
// the exhaustive candidate scan makes its runtime balloon with the user
// count — the search-inefficiency the paper contrasts SoCL against.
#pragma once

#include "baselines/algorithm.h"

namespace socl::baselines {

class GreedyCombine final : public ProvisioningAlgorithm {
 public:
  std::string name() const override { return "GC-OG"; }
  core::Solution solve(const core::Scenario& scenario) const override;
};

}  // namespace socl::baselines
