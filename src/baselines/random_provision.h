// RP — Random Provisioning baseline (Section V-A).
//
// Deploys one instance of every requested microservice on a random node
// (feasibility floor), then spends the remaining budget on uniformly random
// (microservice, node) pairs subject to storage; each user's chain positions
// are routed to uniformly random hosting nodes. The unstructured strategy is
// the paper's worst-performing baseline.
#pragma once

#include <cstdint>

#include "baselines/algorithm.h"
#include "util/rng.h"

namespace socl::baselines {

/// RP's routing rule: each chain position picks a uniformly random hosting
/// node. Exposed so trace benches can re-roll routing per slot.
core::Assignment random_routing(const core::Scenario& scenario,
                                const core::Placement& placement,
                                util::Rng& rng);

class RandomProvision final : public ProvisioningAlgorithm {
 public:
  explicit RandomProvision(std::uint64_t seed = 7) : seed_(seed) {}
  std::string name() const override { return "RP"; }
  core::Solution solve(const core::Scenario& scenario) const override;

 private:
  std::uint64_t seed_;
};

}  // namespace socl::baselines
