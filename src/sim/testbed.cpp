#include "sim/testbed.h"

#include <algorithm>
#include <cmath>

#include "util/thread_pool.h"

namespace socl::sim {

using core::NodeId;

TestbedEmulator::TestbedEmulator(const core::Scenario& scenario,
                                 const TestbedConfig& config,
                                 std::uint64_t seed)
    : scenario_(&scenario), config_(config) {
  util::Rng rng(seed);
  link_gbps_.resize(scenario.network().num_links());
  for (auto& speed : link_gbps_) {
    speed = rng.uniform(config_.link_gbps_min, config_.link_gbps_max);
  }
}

double TestbedEmulator::hop_ms(double data_units, NodeId a, NodeId b) const {
  if (a == b) return 0.0;
  const auto links = scenario_->paths().path_links(a, b);
  if (links.empty()) return 1e9;  // unreachable (cannot happen: connected)
  const double megabits = data_units * config_.data_to_megabits;
  double ms = 0.0;
  for (const auto link : links) {
    const double gbps = link_gbps_[static_cast<std::size_t>(link)];
    ms += megabits / (gbps * 1000.0) * 1000.0;  // Mb / (Mb/ms)
  }
  return ms;
}

std::vector<double> TestbedEmulator::utilisation(
    const core::Assignment& assignment) const {
  const auto& catalog = scenario_->catalog();
  std::vector<double> load(scenario_->network().num_nodes(), 0.0);
  for (const auto& request : scenario_->requests()) {
    for (std::size_t pos = 0; pos < request.chain.size(); ++pos) {
      const NodeId k = assignment.node_for(request.id, static_cast<int>(pos));
      // Work offered per second = arrival rate * per-invocation GFLOP.
      load[static_cast<std::size_t>(k)] +=
          config_.arrival_rate *
          catalog.microservice(request.chain[pos]).compute_gflop;
    }
  }
  const double capacity =
      config_.core_gflops * static_cast<double>(config_.cores);
  for (auto& value : load) value = std::min(value / capacity, 0.95);
  return load;
}

std::vector<LatencySample> TestbedEmulator::measure(
    const core::Placement& placement, const core::Assignment& assignment,
    int rounds, std::uint64_t seed) const {
  (void)placement;
  const auto& catalog = scenario_->catalog();
  const auto& requests = scenario_->requests();
  const auto util = utilisation(assignment);
  const std::size_t num_users = requests.size();

  // Round-major sample layout (samples[round * U + u]), matching the
  // historical serial dispatch order. Each user owns a counter-based RNG
  // stream pure in (seed, user index), so the per-user fan-out below
  // produces bit-identical samples for any thread count.
  std::vector<LatencySample> samples(static_cast<std::size_t>(rounds) *
                                     num_users);
  const auto measure_user = [&](std::size_t u) {
    const auto& request = requests[u];
    // Transfer legs and queue-inflated processing bases are deterministic;
    // only the jitter is redrawn per round.
    double transfer_ms = 0.0;
    std::vector<double> stage_ms(request.chain.size());
    NodeId prev = request.attach_node;
    NodeId first = net::kInvalidNode;
    for (std::size_t pos = 0; pos < request.chain.size(); ++pos) {
      const NodeId k = assignment.node_for(request.id, static_cast<int>(pos));
      const double data =
          pos == 0 ? request.data_in : request.edge_data[pos - 1];
      transfer_ms += hop_ms(data, prev, k);
      // Processing with M/M/1 inflation and log-normal jitter. The
      // containers execute a scaled-down replica of the workload, so one
      // GFLOP of simulator work costs ~1 ms per core-GFLOP/s of testbed
      // capacity.
      const double base_ms =
          catalog.microservice(request.chain[pos]).compute_gflop /
          config_.core_gflops;
      const double queue_factor =
          1.0 / (1.0 - util[static_cast<std::size_t>(k)]);
      stage_ms[pos] = base_ms * queue_factor;
      if (pos == 0) first = k;
      prev = k;
    }
    transfer_ms += hop_ms(request.data_out, prev, first);

    util::Rng rng(seed ^ (0x9E3779B97F4A7C15ULL *
                          (static_cast<std::uint64_t>(u) + 1)));
    for (int round = 0; round < rounds; ++round) {
      double ms = transfer_ms;
      for (const double base : stage_ms) {
        ms += base * std::exp(rng.normal(0.0, config_.jitter_sigma));
      }
      samples[static_cast<std::size_t>(round) * num_users + u] =
          LatencySample{request.id, ms};
    }
  };

  if (config_.threads != 1 && num_users > 1) {
    util::ThreadPool pool(static_cast<std::size_t>(
        config_.threads > 0 ? config_.threads : 0));
    pool.parallel_for(num_users, measure_user);
  } else {
    for (std::size_t u = 0; u < num_users; ++u) measure_user(u);
  }
  return samples;
}

}  // namespace socl::sim
