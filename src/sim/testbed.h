// Kubernetes-testbed emulator (Section V-C substitution).
//
// The paper validates on 17 machines (2 cores / 2 GB each, 1-2 Gbit/s) —
// 8 or 16 edge nodes plus a master that dispatches requests and records
// latency. This emulator reproduces that measurement pipeline: a placement +
// assignment is "deployed", then individual requests are dispatched through
// the chain and timed in milliseconds with
//   - per-hop transfer times over the testbed's Gbit/s links,
//   - per-instance processing with M/M/1-style queueing inflation from the
//     node's utilisation (2-core machines saturate visibly),
//   - log-normal service jitter (container runtime noise).
// Absolute numbers depend on the scale constants; the algorithm ranking and
// the stability behaviour (max-latency spikes) are what Fig. 9/10 compare.
#pragma once

#include <cstdint>
#include <vector>

#include "core/evaluator.h"
#include "util/rng.h"

namespace socl::sim {

struct TestbedConfig {
  /// Converts workload data units into testbed megabits (real HTTP payloads
  /// are far smaller than the simulator's bulk flows; the testbed runs a
  /// scaled-down replica of the workload).
  double data_to_megabits = 0.05;
  /// Link speed range in Gbit/s (paper: 1-2 Gbit/s machines).
  double link_gbps_min = 1.0;
  double link_gbps_max = 2.0;
  /// Per-core service rate in GFLOP/s and cores per machine.
  double core_gflops = 4.0;
  int cores = 2;
  /// Log-normal jitter sigma on processing times.
  double jitter_sigma = 0.25;
  /// Per-request arrival rate per user (requests/s) used for utilisation.
  /// The default puts moderately loaded nodes near ~30% utilisation, so
  /// capacity-blind routing that concentrates traffic visibly queues.
  double arrival_rate = 0.03;
  /// Worker threads for measure() (1 = serial, 0 = hardware concurrency).
  /// Samples are bit-identical for any value: every user draws jitter from
  /// its own counter-based RNG stream, so the fan-out never reorders draws.
  int threads = 1;
};

/// Per-request latency sample in milliseconds.
struct LatencySample {
  int user = -1;
  double latency_ms = 0.0;
};

class TestbedEmulator {
 public:
  /// Assigns testbed link speeds deterministically from `seed`.
  TestbedEmulator(const core::Scenario& scenario, const TestbedConfig& config,
                  std::uint64_t seed);

  /// Dispatches `rounds` requests per user through the assignment and
  /// returns all latency samples.
  std::vector<LatencySample> measure(const core::Placement& placement,
                                     const core::Assignment& assignment,
                                     int rounds, std::uint64_t seed) const;

  /// Node utilisation implied by the assignment (exposed for tests).
  std::vector<double> utilisation(const core::Assignment& assignment) const;

 private:
  double hop_ms(double data_units, core::NodeId a, core::NodeId b) const;

  const core::Scenario* scenario_;
  TestbedConfig config_;
  /// Per physical link Gbit/s speed, indexed by LinkId.
  std::vector<double> link_gbps_;
};

}  // namespace socl::sim
