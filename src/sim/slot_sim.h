// Time-slotted online simulation (Section I: SoCL "processes decisions in a
// time-slotted manner, adapting to the observed system state and current
// user demand at each slot"). Each slot: users move (mobility model),
// optionally refresh their request chains (stochastic service dependencies),
// the algorithm makes a one-shot decision, and the shared evaluator scores
// it. Drives the Fig. 10 trace experiment and the online examples.
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/algorithm.h"
#include "workload/mobility.h"

namespace socl::sim {

struct SlotSimConfig {
  int slots = 48;  // e.g. 4 hours at 5-minute slots
  workload::MobilityConfig mobility;
  /// Regenerate chains each slot (stochastic service dependencies).
  bool regenerate_chains = false;
  std::uint64_t seed = 11;
};

struct SlotMetrics {
  int slot = 0;
  double objective = 0.0;
  double deployment_cost = 0.0;
  double total_latency = 0.0;
  double mean_latency = 0.0;
  double max_latency = 0.0;
  int deadline_violations = 0;
  double solve_seconds = 0.0;
};

/// Runs one algorithm over a mobility trace; the same seed reproduces the
/// same trace across algorithms, so series are directly comparable.
std::vector<SlotMetrics> run_slotted(const core::ScenarioConfig& base_config,
                                     std::uint64_t scenario_seed,
                                     const baselines::ProvisioningAlgorithm&
                                         algorithm,
                                     const SlotSimConfig& sim_config);

}  // namespace socl::sim
