// Time-slotted online simulation (Section I: SoCL "processes decisions in a
// time-slotted manner, adapting to the observed system state and current
// user demand at each slot"). Each slot: users move (mobility model),
// optionally refresh their request chains (stochastic service dependencies),
// the algorithm makes a one-shot decision, and the shared evaluator scores
// it. Drives the Fig. 10 trace experiment and the online examples.
//
// With `serverless.enabled` the slot's placement is additionally executed on
// the container runtime (src/serverless/): arrivals for the slot window are
// replayed through the solved assignment, and instances churned relative to
// the previous slot's placement pay real cold starts at rollout. This turns
// the abstract churn count into measured cold-start latency.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "baselines/algorithm.h"
#include "serverless/runtime.h"
#include "workload/mobility.h"

namespace socl::obs {
class ObsSink;
}

namespace socl::sim {

/// Scaling policy selector for the slot simulator's serverless mode. The
/// SoCL pre-warm policy is rebuilt each slot from the current demand.
enum class ServerlessPolicyKind { kFixed, kReactive, kSoclPrewarm };

struct SlotServerlessConfig {
  bool enabled = false;
  serverless::ServerlessConfig runtime;
  /// Arrival process per slot; the per-slot seed is derived from
  /// SlotSimConfig::seed and the slot index, so every algorithm replays the
  /// identical arrival stream.
  serverless::ArrivalConfig arrivals;
  ServerlessPolicyKind policy = ServerlessPolicyKind::kReactive;
};

struct SlotMetrics;

struct SlotSimConfig {
  int slots = 48;  // e.g. 4 hours at 5-minute slots
  workload::MobilityConfig mobility;
  /// Regenerate chains each slot (stochastic service dependencies).
  bool regenerate_chains = false;
  std::uint64_t seed = 11;
  SlotServerlessConfig serverless;
  /// Called after each slot is scored, with the scenario still holding that
  /// slot's requests — lets tests and benches recompute per-slot quantities
  /// (e.g. recount deadline violations) without re-running the trace.
  std::function<void(const core::Scenario& scenario,
                     const core::Solution& solution,
                     const SlotMetrics& metrics)>
      observer;
  /// Observability sink: a `sim.slot` span plus `socl.sim.*` metrics per
  /// slot; forwarded to the serverless runtime when its own config leaves
  /// `sink` null. Does NOT reach the algorithm under test — set
  /// `SoCLParams::sink` for solver-phase spans. nullptr disables.
  obs::ObsSink* sink = nullptr;
};

struct SlotMetrics {
  int slot = 0;
  double objective = 0.0;
  double deployment_cost = 0.0;
  double total_latency = 0.0;
  double mean_latency = 0.0;
  double max_latency = 0.0;
  int deadline_violations = 0;
  double solve_seconds = 0.0;
  /// FNV-1a hash of the slot's demand (attach nodes, chains, data volumes).
  /// Equal seeds must produce equal fingerprints whatever the algorithm —
  /// the trace is independent of the decisions taken on it.
  std::uint64_t demand_fingerprint = 0;
  /// Instances added + removed vs the previous slot (0 on the first slot).
  int placement_churn = 0;
  // --- serverless mode only (zeros otherwise) ---
  std::int64_t invocations = 0;
  std::int64_t cold_starts = 0;      ///< invocations that waited on a boot
  std::int64_t container_boots = 0;  ///< demand + prewarm/rollout boots
  double serverless_mean_s = 0.0;    ///< mean end-to-end latency on runtime
  double cold_wait_mean_s = 0.0;     ///< mean per-request cold-start wait
};

/// Runs one algorithm over a mobility trace; the same seed reproduces the
/// same trace across algorithms, so series are directly comparable.
std::vector<SlotMetrics> run_slotted(const core::ScenarioConfig& base_config,
                                     std::uint64_t scenario_seed,
                                     const baselines::ProvisioningAlgorithm&
                                         algorithm,
                                     const SlotSimConfig& sim_config);

}  // namespace socl::sim
