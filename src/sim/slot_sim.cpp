#include "sim/slot_sim.h"

#include <memory>
#include <utility>

#include "core/online.h"
#include "obs/sink.h"
#include "workload/request_gen.h"

namespace socl::sim {
namespace {

void fnv_mix(std::uint64_t& h, std::uint64_t value) {
  h ^= value;
  h *= 0x100000001B3ULL;
}

std::uint64_t bits(double value) {
  std::uint64_t out;
  static_assert(sizeof(out) == sizeof(value));
  __builtin_memcpy(&out, &value, sizeof(out));
  return out;
}

/// FNV-1a over everything the algorithms see as demand. Pure in the request
/// set, so two runs with the same seed must agree whatever algorithm is
/// being driven over the trace.
std::uint64_t demand_fingerprint(
    const std::vector<workload::UserRequest>& requests) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const auto& request : requests) {
    fnv_mix(h, static_cast<std::uint64_t>(request.attach_node));
    fnv_mix(h, request.chain.size());
    for (const workload::MsId m : request.chain) {
      fnv_mix(h, static_cast<std::uint64_t>(m));
    }
    for (const double d : request.edge_data) fnv_mix(h, bits(d));
    fnv_mix(h, bits(request.data_in));
    fnv_mix(h, bits(request.data_out));
    fnv_mix(h, bits(request.deadline));
  }
  return h;
}

std::unique_ptr<serverless::ScalingPolicy> make_policy(
    ServerlessPolicyKind kind, const core::Scenario& scenario) {
  switch (kind) {
    case ServerlessPolicyKind::kFixed:
      return std::make_unique<serverless::FixedPoolPolicy>(1);
    case ServerlessPolicyKind::kReactive:
      return std::make_unique<serverless::ReactivePolicy>();
    case ServerlessPolicyKind::kSoclPrewarm:
      return std::make_unique<serverless::SoCLPrewarmPolicy>(scenario);
  }
  return std::make_unique<serverless::ReactivePolicy>();
}

}  // namespace

std::vector<SlotMetrics> run_slotted(
    const core::ScenarioConfig& base_config, std::uint64_t scenario_seed,
    const baselines::ProvisioningAlgorithm& algorithm,
    const SlotSimConfig& sim_config) {
  core::Scenario scenario = core::make_scenario(base_config, scenario_seed);

  // The mobility stream is independent of the algorithm under test.
  util::Rng rng(sim_config.seed);
  util::Rng weight_rng(sim_config.seed ^ 0xabcdULL);
  const auto weights = workload::attachment_weights(
      scenario.network().num_nodes(), base_config.requests, weight_rng);

  std::optional<core::Placement> carried;
  std::vector<SlotMetrics> series;
  series.reserve(static_cast<std::size_t>(sim_config.slots));
  for (int slot = 0; slot < sim_config.slots; ++slot) {
    const obs::ScopedSpan slot_span(sim_config.sink, obs::Phase::kSim,
                                    "sim.slot");
    auto requests = scenario.requests();
    workload::mobility_step(scenario.network(), requests, weights,
                            sim_config.mobility, rng);
    if (sim_config.regenerate_chains) {
      // Fresh chains with the same population size; attach nodes are kept
      // from the mobility stream.
      workload::RequestGenConfig gen = base_config.requests;
      gen.num_users = base_config.num_users;
      auto fresh = workload::generate_requests(
          scenario.network(), scenario.catalog(), gen,
          sim_config.seed + static_cast<std::uint64_t>(slot) * 1000003ULL);
      for (std::size_t i = 0; i < requests.size() && i < fresh.size(); ++i) {
        fresh[i].attach_node = requests[i].attach_node;
        fresh[i].id = requests[i].id;
      }
      requests = std::move(fresh);
    }
    scenario.set_requests(std::move(requests));

    const core::Solution solution = algorithm.solve(scenario);
    SlotMetrics metrics;
    metrics.slot = slot;
    metrics.objective = solution.evaluation.objective;
    metrics.deployment_cost = solution.evaluation.deployment_cost;
    metrics.total_latency = solution.evaluation.total_latency;
    metrics.mean_latency = solution.evaluation.mean_latency;
    metrics.max_latency = solution.evaluation.max_latency;
    metrics.deadline_violations = solution.evaluation.deadline_violations;
    metrics.solve_seconds = solution.runtime_seconds;
    metrics.demand_fingerprint = demand_fingerprint(scenario.requests());
    metrics.placement_churn =
        carried ? core::placement_churn(*carried, solution.placement) : 0;

    if (sim_config.serverless.enabled && solution.assignment) {
      serverless::ArrivalConfig arrival_config =
          sim_config.serverless.arrivals;
      arrival_config.seed =
          sim_config.seed ^
          (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(slot) + 1));
      const auto arrivals = serverless::generate_arrivals(
          static_cast<int>(scenario.requests().size()), arrival_config);
      const auto policy =
          make_policy(sim_config.serverless.policy, scenario);
      serverless::ServerlessConfig runtime_config =
          sim_config.serverless.runtime;
      if (runtime_config.sink == nullptr) {
        runtime_config.sink = sim_config.sink;
      }
      const serverless::ServerlessRuntime runtime(scenario, runtime_config);
      const auto run = runtime.run(
          solution.placement, *solution.assignment, arrivals, *policy,
          arrival_config.seed ^ 0x5E71E55ULL,
          carried ? &*carried : nullptr);
      metrics.invocations = run.totals.invocations;
      metrics.cold_starts = run.totals.cold_serves;
      metrics.container_boots =
          run.totals.demand_boots + run.totals.prewarm_boots;
      metrics.serverless_mean_s = run.mean_latency_s();
      metrics.cold_wait_mean_s = run.mean_cold_s();
    }

    if (sim_config.sink != nullptr) {
      obs::ObsSink* const sink = sim_config.sink;
      sink->add_counter("socl.sim.slots", 1);
      sink->add_counter("socl.sim.placement_churn", metrics.placement_churn);
      sink->add_counter("socl.sim.deadline_violations",
                        metrics.deadline_violations);
      sink->observe("socl.sim.solve_s", metrics.solve_seconds);
      sink->set_gauge("socl.sim.objective", metrics.objective);
    }

    carried = solution.placement;
    if (sim_config.observer) {
      sim_config.observer(scenario, solution, metrics);
    }
    series.push_back(metrics);
  }
  return series;
}

}  // namespace socl::sim
