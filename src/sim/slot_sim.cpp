#include "sim/slot_sim.h"

#include "workload/request_gen.h"

namespace socl::sim {

std::vector<SlotMetrics> run_slotted(
    const core::ScenarioConfig& base_config, std::uint64_t scenario_seed,
    const baselines::ProvisioningAlgorithm& algorithm,
    const SlotSimConfig& sim_config) {
  core::Scenario scenario = core::make_scenario(base_config, scenario_seed);

  // The mobility stream is independent of the algorithm under test.
  util::Rng rng(sim_config.seed);
  util::Rng weight_rng(sim_config.seed ^ 0xabcdULL);
  const auto weights = workload::attachment_weights(
      scenario.network().num_nodes(), base_config.requests, weight_rng);

  std::vector<SlotMetrics> series;
  series.reserve(static_cast<std::size_t>(sim_config.slots));
  for (int slot = 0; slot < sim_config.slots; ++slot) {
    auto requests = scenario.requests();
    workload::mobility_step(scenario.network(), requests, weights,
                            sim_config.mobility, rng);
    if (sim_config.regenerate_chains) {
      // Fresh chains with the same population size; attach nodes are kept
      // from the mobility stream.
      workload::RequestGenConfig gen = base_config.requests;
      gen.num_users = base_config.num_users;
      auto fresh = workload::generate_requests(
          scenario.network(), scenario.catalog(), gen,
          sim_config.seed + static_cast<std::uint64_t>(slot) * 1000003ULL);
      for (std::size_t i = 0; i < requests.size() && i < fresh.size(); ++i) {
        fresh[i].attach_node = requests[i].attach_node;
        fresh[i].id = requests[i].id;
      }
      requests = std::move(fresh);
    }
    scenario.set_requests(std::move(requests));

    const core::Solution solution = algorithm.solve(scenario);
    SlotMetrics metrics;
    metrics.slot = slot;
    metrics.objective = solution.evaluation.objective;
    metrics.deployment_cost = solution.evaluation.deployment_cost;
    metrics.total_latency = solution.evaluation.total_latency;
    metrics.mean_latency = solution.evaluation.mean_latency;
    metrics.max_latency = solution.evaluation.max_latency;
    metrics.deadline_violations = solution.evaluation.deadline_violations;
    metrics.solve_seconds = solution.runtime_seconds;
    series.push_back(metrics);
  }
  return series;
}

}  // namespace socl::sim
