// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component in the library takes an explicit seed (or an
// Rng&) so that benchmark tables regenerate identically across runs and
// platforms. The generator is xoshiro256**, seeded via SplitMix64; both are
// implemented here rather than relying on <random> engines whose streams are
// not guaranteed to be identical across standard-library implementations.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

namespace socl::util {

/// xoshiro256** generator with distribution helpers.
///
/// Satisfies the UniformRandomBitGenerator concept, so it can also be used
/// with <random> distributions when exact stream reproducibility across
/// platforms is not required.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from a single seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit word.
  result_type operator()();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  /// Standard normal via Box-Muller (cached second variate).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with the given rate (mean = 1/rate).
  double exponential(double rate);

  /// Poisson-distributed count (Knuth for small means, normal approx above).
  std::uint64_t poisson(double mean);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Uniformly chosen index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Uniformly chosen element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    if (items.empty()) throw std::invalid_argument("Rng::pick: empty span");
    return items[index(items.size())];
  }
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return pick(std::span<const T>(items));
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[index(i)]);
    }
  }

  /// Weighted index selection proportional to non-negative weights.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(std::span<const double> weights);

  /// Derives an independent child generator (for per-worker streams).
  Rng split();

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace socl::util
