// Fixed-size worker pool used by SoCL's parallel large-scale combination
// stage (Algorithm 3, lines 1-5) and by benchmark scenario sweeps.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace socl::util {

/// Simple task-queue thread pool. Tasks may not block on each other; the
/// library only submits independent leaf work (per-instance latency-loss
/// evaluation, per-scenario benchmark runs).
class ThreadPool {
 public:
  /// Creates `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using Result = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<F>(fn));
    std::future<Result> result = task->get_future();
    {
      std::scoped_lock lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool::submit after shutdown");
      }
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs fn(i) for i in [0, n), blocking until all iterations finish.
  /// Exceptions from iterations are rethrown (first one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Like parallel_for, but passes the dense worker slot (0 <= worker <
  /// min(n, size())) executing the iteration, so callers can maintain
  /// per-worker scratch state without locking. A given slot never runs two
  /// iterations concurrently.
  void parallel_for_workers(
      std::size_t n,
      const std::function<void(std::size_t worker, std::size_t i)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace socl::util
