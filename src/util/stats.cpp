#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace socl::util {
namespace {

/// Interpolates between two adjacent order statistics without poisoning the
/// result: the textbook `lo + frac * (hi - lo)` evaluates `0.0 * inf` or
/// `inf - inf` (both NaN) when a neighbour is infinite. Exact ranks and
/// equal neighbours short-circuit; a non-finite neighbour falls back to
/// nearest-rank (round half up).
double interpolate_rank(double lo_value, double hi_value, double frac) {
  if (frac == 0.0 || lo_value == hi_value) return lo_value;
  if (!std::isfinite(lo_value) || !std::isfinite(hi_value)) {
    return frac < 0.5 ? lo_value : hi_value;
  }
  return lo_value + frac * (hi_value - lo_value);
}

/// NaN breaks the strict weak ordering std::sort / std::nth_element require,
/// which silently scrambles the order statistics; reject it up front.
void reject_nan(const std::vector<double>& values, const char* fn) {
  for (const double v : values) {
    if (std::isnan(v)) {
      throw std::invalid_argument(std::string(fn) + ": NaN in input");
    }
  }
}

}  // namespace

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> values, double p) {
  if (values.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile: p out of [0,100]");
  }
  reject_nan(values, "percentile");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return interpolate_rank(values[lo], values[hi], frac);
}

double median(std::vector<double> values) {
  return percentile(std::move(values), 50.0);
}

std::vector<double> quantiles(std::vector<double> values,
                              std::span<const double> ps) {
  if (values.empty()) throw std::invalid_argument("quantiles: empty input");
  reject_nan(values, "quantiles");
  for (const double p : ps) {
    if (p < 0.0 || p > 100.0) {
      throw std::invalid_argument("quantiles: p out of [0,100]");
    }
  }
  // Visit requested ranks ascending so every nth_element partitions only the
  // suffix left unsorted by the previous one.
  std::vector<std::size_t> order(ps.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return ps[a] < ps[b]; });

  std::vector<double> out(ps.size());
  const std::size_t n = values.size();
  std::size_t sorted_below = 0;  // values[0..sorted_below) is in final order
  for (const std::size_t i : order) {
    const double rank =
        n == 1 ? 0.0 : ps[i] / 100.0 * static_cast<double>(n - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, n - 1);
    const double frac = rank - static_cast<double>(lo);
    if (hi >= sorted_below) {
      auto begin = values.begin() + static_cast<std::ptrdiff_t>(sorted_below);
      std::nth_element(begin,
                       values.begin() + static_cast<std::ptrdiff_t>(hi),
                       values.end());
      if (lo >= sorted_below && lo < hi) {
        // values[lo] is the max of the left partition.
        std::nth_element(begin,
                         values.begin() + static_cast<std::ptrdiff_t>(lo),
                         values.begin() + static_cast<std::ptrdiff_t>(hi));
      }
      sorted_below = hi + 1;
    }
    out[i] = interpolate_rank(values[lo], values[hi], frac);
  }
  return out;
}

double jaccard_similarity(const std::unordered_set<std::uint64_t>& a,
                          const std::unordered_set<std::uint64_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::size_t intersection = 0;
  const auto& smaller = a.size() <= b.size() ? a : b;
  const auto& larger = a.size() <= b.size() ? b : a;
  for (std::uint64_t item : smaller) {
    if (larger.contains(item)) ++intersection;
  }
  const std::size_t unions = a.size() + b.size() - intersection;
  return static_cast<double>(intersection) / static_cast<double>(unions);
}

double cosine_similarity(std::span<const double> a,
                         std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("cosine_similarity: size mismatch");
  }
  double dot = 0.0, norm_a = 0.0, norm_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    norm_a += a[i] * a[i];
    norm_b += b[i] * b[i];
  }
  if (norm_a == 0.0 || norm_b == 0.0) return 0.0;
  return dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
}

double pearson_correlation(std::span<const double> a,
                           std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("pearson_correlation: size mismatch");
  }
  if (a.empty()) return 0.0;
  const double n = static_cast<double>(a.size());
  double mean_a = 0.0, mean_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= n;
  mean_b /= n;
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a == 0.0 || var_b == 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: zero bins");
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo >= hi");
}

void Histogram::add(double x) {
  // casting a NaN (or an out-of-ptrdiff-range ±inf fraction) to an integer
  // is undefined behaviour, so non-finite samples are tallied separately
  // instead of being binned.
  if (!std::isfinite(x)) {
    ++non_finite_;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(
      frac * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_low(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t bin) const { return bin_low(bin + 1); }

std::string Histogram::render(std::size_t bar_width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto width = static_cast<std::size_t>(
        static_cast<double>(counts_[b]) / static_cast<double>(peak) *
        static_cast<double>(bar_width));
    out << '[' << bin_low(b) << ", " << bin_high(b) << ") "
        << std::string(width, '#') << ' ' << counts_[b] << '\n';
  }
  return out.str();
}

}  // namespace socl::util
