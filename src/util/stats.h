// Streaming statistics, percentiles, histograms, and set/vector similarity
// measures used by the evaluation harness (Fig. 3 similarity analysis,
// Fig. 9/10 latency aggregation).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

namespace socl::util {

/// Welford-style running mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile with linear interpolation; p in [0, 100]. Sorts a copy.
/// ±inf samples are legal (interpolation next to one falls back to
/// nearest-rank instead of producing NaN); a NaN sample throws
/// std::invalid_argument, since NaN breaks the sort's ordering.
double percentile(std::vector<double> values, double p);

/// Median shortcut.
double median(std::vector<double> values);

/// Batch percentile extraction via nth_element instead of a full sort:
/// returns one value per entry of `ps` (each in [0, 100], any order), with
/// the same linear interpolation (and ±inf / NaN rules) as percentile().
/// Ranks are visited in
/// ascending order so each nth_element call only partitions the suffix the
/// previous calls left unsorted — O(n · |ps|) worst case, ~O(n) in practice,
/// vs O(n log n) per percentile for the sort-based variant.
std::vector<double> quantiles(std::vector<double> values,
                              std::span<const double> ps);

/// Jaccard similarity |A∩B| / |A∪B| of two integer sets; 1.0 if both empty.
double jaccard_similarity(const std::unordered_set<std::uint64_t>& a,
                          const std::unordered_set<std::uint64_t>& b);

/// Cosine similarity of two equal-length vectors; 0.0 if either is zero.
double cosine_similarity(std::span<const double> a, std::span<const double> b);

/// Pearson correlation coefficient; 0.0 when either side has no variance.
double pearson_correlation(std::span<const double> a,
                           std::span<const double> b);

/// Fixed-width histogram over [lo, hi); finite values outside are clamped to
/// the boundary bins, NaN/±inf samples land in a separate overflow counter.
/// Used for latency distribution reporting.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t bins() const { return counts_.size(); }
  /// Number of finite samples binned so far (excludes non_finite()).
  std::size_t total() const { return total_; }
  /// Number of NaN/±inf samples seen (e.g. unroutable-request latencies).
  std::size_t non_finite() const { return non_finite_; }
  double bin_low(std::size_t bin) const;
  double bin_high(std::size_t bin) const;

  /// Multi-line ASCII rendering (one row per bin with a proportional bar).
  std::string render(std::size_t bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t non_finite_ = 0;
};

}  // namespace socl::util
