#include "util/rng.h"

#include <bit>
#include <cmath>
#include <numbers>

namespace socl::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro's all-zero state is a fixed point; splitmix64 cannot emit four
  // consecutive zeros, but guard anyway for defence in depth.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::uniform(double lo, double hi) {
  // 53 random mantissa bits -> uniform in [0, 1).
  const double unit =
      static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  return lo + unit * (hi - lo);
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return mean + stddev * radius * std::cos(angle);
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("Rng::exponential: rate <= 0");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

std::uint64_t Rng::poisson(double mean) {
  if (mean < 0.0) throw std::invalid_argument("Rng::poisson: mean < 0");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    const double threshold = std::exp(-mean);
    std::uint64_t count = 0;
    double product = uniform();
    while (product > threshold) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction for large means.
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::index: n == 0");
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Rng::weighted_index: w < 0");
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("Rng::weighted_index: all weights zero");
  }
  double target = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical fallback
}

Rng Rng::split() { return Rng((*this)()); }

}  // namespace socl::util
