// Wall-clock timing for the runtime comparisons (Fig. 2, Fig. 7 (b)/(d)).
#pragma once

#include <chrono>

namespace socl::util {

/// Monotonic wall timer; starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace socl::util
