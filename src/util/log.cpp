#include "util/log.h"

#include <atomic>
#include <cstdio>

namespace socl::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace socl::util
