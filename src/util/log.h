// Minimal leveled logger. Benchmarks run at Info; tests at Warn to keep
// ctest output clean. Not a general-purpose logging framework by design.
#pragma once

#include <sstream>
#include <string>

namespace socl::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits a single line `[LEVEL] message` to stderr if level passes the
/// threshold. Thread-safe (single formatted write).
void log_message(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream out;
  (out << ... << std::forward<Args>(args));
  return out.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug) {
    log_message(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
  }
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo) {
    log_message(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
  }
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn) {
    log_message(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
  }
}
template <typename... Args>
void log_error(Args&&... args) {
  log_message(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace socl::util
