#include "util/table.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace socl::util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

Table& Table::row() {
  cells_.emplace_back();
  cells_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(std::string value) {
  if (cells_.empty()) row();
  if (cells_.back().size() >= headers_.size()) {
    throw std::out_of_range("Table::cell: row already full");
  }
  cells_.back().push_back(std::move(value));
  return *this;
}

Table& Table::num(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return cell(out.str());
}

Table& Table::integer(long long value) { return cell(std::to_string(value)); }

Table& Table::add_row(std::initializer_list<std::string> cells) {
  row();
  for (const auto& value : cells) cell(value);
  return *this;
}

const std::string& Table::at(std::size_t row, std::size_t col) const {
  return cells_.at(row).at(col);
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& value = c < row.size() ? row[c] : std::string();
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << value;
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t rule = 0;
  for (std::size_t w : widths) rule += w + 2;
  out << std::string(rule, '-') << '\n';
  for (const auto& row : cells_) emit_row(row);
  return out.str();
}

void Table::print(std::ostream& out) const { out << render(); }

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

}  // namespace

std::string Table::to_csv() const {
  std::ostringstream out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out << ',';
    out << csv_escape(headers_[c]);
  }
  out << '\n';
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << csv_escape(row[c]);
    }
    out << '\n';
  }
  return out.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("Table::write_csv: cannot open " + path);
  file << to_csv();
  if (!file) throw std::runtime_error("Table::write_csv: write failed");
}

}  // namespace socl::util
