// Console table and CSV emission for the benchmark harness. Every figure
// bench prints one fixed-width table (the paper's series) and can mirror it
// to CSV for plotting.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace socl::util {

/// Accumulates rows of stringified cells and renders them with aligned
/// fixed-width columns. Numeric helpers format with fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; cells are appended with `cell`/`num`.
  Table& row();
  Table& cell(std::string value);
  Table& num(double value, int precision = 3);
  Table& integer(long long value);

  /// Convenience: append a full row at once.
  Table& add_row(std::initializer_list<std::string> cells);

  std::size_t rows() const { return cells_.size(); }
  const std::string& at(std::size_t row, std::size_t col) const;

  /// Fixed-width rendering with a header rule.
  std::string render() const;
  void print(std::ostream& out) const;

  /// RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  std::string to_csv() const;
  /// Writes CSV to `path`; throws std::runtime_error on I/O failure.
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

}  // namespace socl::util
