#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace socl::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ && drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_workers(n, [&fn](std::size_t, std::size_t i) { fn(i); });
}

void ThreadPool::parallel_for_workers(
    std::size_t n,
    const std::function<void(std::size_t worker, std::size_t i)>& fn) {
  if (n == 0) return;
  // Chunked dispatch: one task per worker pulling indices from a shared
  // counter keeps queue overhead constant regardless of n.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto first_error = std::make_shared<std::atomic<bool>>(false);
  std::exception_ptr error;
  std::mutex error_mutex;

  const std::size_t tasks = std::min(n, size());
  std::vector<std::future<void>> futures;
  futures.reserve(tasks);
  for (std::size_t t = 0; t < tasks; ++t) {
    futures.push_back(submit([&, next, first_error, t] {
      for (;;) {
        const std::size_t i = next->fetch_add(1);
        if (i >= n || first_error->load()) return;
        try {
          fn(t, i);
        } catch (...) {
          if (!first_error->exchange(true)) {
            std::scoped_lock lock(error_mutex);
            error = std::current_exception();
          }
          return;
        }
      }
    }));
  }
  for (auto& future : futures) future.get();
  if (error) std::rethrow_exception(error);
}

}  // namespace socl::util
