#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace socl::obs {
namespace {

std::string json_escape(const char* text) {
  std::string out;
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_fixed(std::string& out, double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  out += buffer;
}

}  // namespace

void TraceBuffer::record(Phase phase, const char* name, double start_us,
                         double dur_us) {
  const std::thread::id self = std::this_thread::get_id();
  const std::lock_guard<std::mutex> lock(mu_);
  int tid = -1;
  for (std::size_t i = 0; i < thread_ids_.size(); ++i) {
    if (thread_ids_[i] == self) {
      tid = static_cast<int>(i);
      break;
    }
  }
  if (tid < 0) {
    tid = static_cast<int>(thread_ids_.size());
    thread_ids_.push_back(self);
  }
  events_.push_back(TraceEvent{phase, name, start_us, dur_us, tid});
}

std::size_t TraceBuffer::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceBuffer::events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string TraceBuffer::to_chrome_json() const {
  const std::vector<TraceEvent> snapshot = events();
  std::string out;
  out.reserve(snapshot.size() * 96 + 256);
  out +=
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{\"name\":"
      "\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":"
      "\"socl\"}}";
  for (const TraceEvent& event : snapshot) {
    out += ",{\"name\":\"";
    out += json_escape(event.name);
    out += "\",\"cat\":\"";
    out += phase_name(event.phase);
    out += "\",\"ph\":\"X\",\"ts\":";
    append_fixed(out, event.start_us);
    out += ",\"dur\":";
    append_fixed(out, std::max(event.dur_us, 0.0));
    out += ",\"pid\":0,\"tid\":";
    out += std::to_string(event.tid);
    out += '}';
  }
  out += "]}";
  return out;
}

void TraceBuffer::write_chrome_json(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("TraceBuffer: cannot open " + path);
  }
  out << to_chrome_json() << '\n';
  if (!out) {
    throw std::runtime_error("TraceBuffer: failed writing " + path);
  }
}

}  // namespace socl::obs
