// Observability sink: the single seam every instrumented subsystem emits
// through (DESIGN.md §4e, docs/METRICS.md).
//
// Instrumented code holds a raw `ObsSink*` that is nullptr by default. All
// emission helpers (`ScopedSpan`, `add_counter`, ...) are inline and check
// the pointer first, so the disabled path costs one predictable branch — no
// clock read, no allocation, no lock (`tests/test_obs.cpp` asserts the
// zero-allocation property; `bench_obs` measures the ~0 ns cost). With a
// real sink attached (obs::Recorder), spans land in a Chrome-trace buffer
// and metrics in the sharded registry.
//
// Instrumentation is call-granular by design: spans wrap whole solver
// phases (Algorithms 1–5), routing-engine entry points, and runtime
// windows — never per-user or per-event inner loops — which keeps the
// enabled overhead on the routing hot path under 2% (bench_obs).
#pragma once

#include <cstdint>

namespace socl::obs {

/// Span/metric phase taxonomy: one label per pipeline stage. Used as the
/// Chrome-trace category (`cat`) so Perfetto can filter per phase, and as
/// the bucket key of the automatic `socl.span.<phase>_us` histograms.
enum class Phase {
  kPartition,     ///< Algorithm 1: region-based initial partition
  kFuzzyAhp,      ///< Algorithm 5 + FuzzyAHP ρ scoring (storage planning)
  kPreprovision,  ///< Algorithm 2: instance pre-provisioning
  kCombination,   ///< Algorithms 3/4: multi-scale combination + ζ lists
  kRouting,       ///< chain-DP routing: cache refresh / scoring / route_all
  kServerless,    ///< container-runtime windows and lifecycle events
  kSim,           ///< time-slotted simulation
  kOther,         ///< top-level / uncategorised spans
};

inline constexpr int kNumPhases = 8;

constexpr const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kPartition: return "partition";
    case Phase::kFuzzyAhp: return "fuzzy_ahp";
    case Phase::kPreprovision: return "preprovision";
    case Phase::kCombination: return "combination";
    case Phase::kRouting: return "routing";
    case Phase::kServerless: return "serverless";
    case Phase::kSim: return "sim";
    case Phase::kOther: return "other";
  }
  return "other";
}

/// Abstract emission interface. Names must be string literals (or otherwise
/// outlive the sink): implementations store the pointer for spans and only
/// copy on first metric registration, keeping the steady state allocation
/// free. Metric names follow the `socl.<subsystem>.<name>` scheme
/// (docs/METRICS.md is the authoritative schema).
class ObsSink {
 public:
  virtual ~ObsSink() = default;

  /// A completed span: [start_us, start_us + dur_us), both relative to the
  /// sink's time base (`now_us`), in microseconds.
  virtual void record_span(Phase phase, const char* name, double start_us,
                           double dur_us) = 0;
  virtual void add_counter(const char* name, std::int64_t delta) = 0;
  virtual void set_gauge(const char* name, double value) = 0;
  virtual void observe(const char* name, double value) = 0;
  /// Monotonic microseconds since the sink's time base.
  virtual double now_us() const = 0;
};

/// RAII span. With a null sink the constructor performs no clock read and
/// the destructor is a single branch — the no-op the null-sink bench and
/// test pin down.
class ScopedSpan {
 public:
  ScopedSpan(ObsSink* sink, Phase phase, const char* name)
      : sink_(sink),
        phase_(phase),
        name_(name),
        start_us_(sink != nullptr ? sink->now_us() : 0.0) {}

  ~ScopedSpan() {
    if (sink_ != nullptr) {
      sink_->record_span(phase_, name_, start_us_, sink_->now_us() - start_us_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  ObsSink* sink_;
  Phase phase_;
  const char* name_;
  double start_us_;
};

// Null-safe free-function emitters for one-off metric updates.
inline void add_counter(ObsSink* sink, const char* name, std::int64_t delta) {
  if (sink != nullptr) sink->add_counter(name, delta);
}

inline void set_gauge(ObsSink* sink, const char* name, double value) {
  if (sink != nullptr) sink->set_gauge(name, value);
}

inline void observe(ObsSink* sink, const char* name, double value) {
  if (sink != nullptr) sink->observe(name, value);
}

}  // namespace socl::obs
