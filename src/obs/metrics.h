// Lock-cheap metrics registry: counters, gauges, and fixed-log-bucket
// histograms behind `socl.<subsystem>.<name>` keys (docs/METRICS.md).
//
// Writes land in one of a fixed set of shards picked per thread, each
// guarded by its own mutex — uncontended in the steady state, so a metric
// update costs one uncontended lock plus a map lookup (and allocates only
// on a name's first registration in a shard). `snapshot()` merges the
// shards into a deterministic, name-sorted view: integer counters and
// histogram bucket counts are exact sums (order-independent), gauges are
// last-write-wins by a global sequence number, so the merged result is
// identical for any thread count (`tests/test_obs.cpp` enforces this).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace socl::util {
class Table;
}

namespace socl::obs {

// ---- Fixed log-bucket histogram layout ----
//
// Finite samples fall into kHistogramBuckets + 2 buckets:
//   bucket 0                      underflow: v < kHistogramLowest
//   bucket j (1..kBuckets)        kLowest·2^(j-1) <= v < kLowest·2^j
//   bucket kBuckets + 1           overflow:  v >= kLowest·2^kBuckets
// With kLowest = 1e-6 (one microsecond when observing seconds) the 48
// doubling buckets span 1 µs .. ~3.2 days, enough for every latency and
// stage duration the pipeline emits. Non-finite samples are counted apart
// and never pollute sum/min/max.

inline constexpr int kHistogramBuckets = 48;
inline constexpr double kHistogramLowest = 1e-6;

/// Bucket index of a finite value (see layout above); -1 for NaN/±inf.
int histogram_bucket(double value);
/// Inclusive lower bound of bucket j (0 maps to -inf, the underflow).
double histogram_bucket_lower(int bucket);

struct HistogramData {
  std::array<std::uint64_t, kHistogramBuckets + 2> buckets{};
  std::int64_t count = 0;       ///< finite samples
  std::int64_t non_finite = 0;  ///< NaN / ±inf samples (counted apart)
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void observe(double value);
  void merge(const HistogramData& other);
  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

enum class MetricKind { kCounter, kGauge, kHistogram };

constexpr const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "counter";
}

/// One merged metric in a snapshot.
struct SnapshotEntry {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::int64_t counter = 0;   ///< counter kind only
  double gauge = 0.0;         ///< gauge kind only
  HistogramData histogram;    ///< histogram kind only
};

/// Deterministic (name-sorted) merged view of a registry.
struct MetricsSnapshot {
  std::vector<SnapshotEntry> entries;

  const SnapshotEntry* find(std::string_view name) const;

  /// Tabular form matching the docs/METRICS.md export schema:
  /// metric,kind,count,value,sum,min,max,mean (empty cells where a column
  /// does not apply to the kind).
  util::Table to_table() const;
  std::string to_csv() const;
  void write_csv(const std::string& path) const;

  /// Full-fidelity JSON: histograms include their bucket arrays
  /// ({"le": upper_bound, "count": n}, cumulative "le" semantics like
  /// Prometheus).
  std::string to_json() const;
  void write_json(const std::string& path) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// A name must be used with a single kind; mixing kinds under one name is
  /// a programming error (the first kind registered in a shard wins there).
  void counter_add(std::string_view name, std::int64_t delta);
  void gauge_set(std::string_view name, double value);
  void observe(std::string_view name, double value);

  /// Merged, name-sorted view; safe to call concurrently with writers
  /// (each shard is locked briefly while copied).
  MetricsSnapshot snapshot() const;

 private:
  struct Metric {
    MetricKind kind = MetricKind::kCounter;
    std::int64_t counter = 0;
    double gauge = 0.0;
    std::uint64_t gauge_seq = 0;  ///< last-write-wins merge order
    std::unique_ptr<HistogramData> histogram;
  };

  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, Metric, std::less<>> metrics;
  };

  static constexpr std::size_t kShards = 16;

  Shard& shard_for_thread();
  Metric& slot(Shard& shard, std::string_view name, MetricKind kind);

  std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> gauge_seq_{0};
};

}  // namespace socl::obs
