#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/table.h"

namespace socl::obs {
namespace {

/// Shard index of the calling thread: threads are handed dense ids on first
/// use and folded onto the fixed shard array. Two threads may share a shard
/// (the mutex keeps that correct); a thread never migrates, so its writes
/// always serialise with themselves.
std::size_t thread_shard_index(std::size_t num_shards) {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t dense =
      next.fetch_add(1, std::memory_order_relaxed);
  return dense % num_shards;
}

/// Shortest round-trip-exact formatting for the JSON export.
std::string format_double(double value) {
  if (!std::isfinite(value)) {
    // JSON has no inf/nan literals; the schema maps them to null.
    return "null";
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  double parsed = 0.0;
  std::sscanf(buffer, "%lf", &parsed);
  if (parsed == value) {
    for (int precision = 1; precision < 17; ++precision) {
      char shorter[32];
      std::snprintf(shorter, sizeof(shorter), "%.*g", precision, value);
      std::sscanf(shorter, "%lf", &parsed);
      if (parsed == value) return shorter;
    }
  }
  return buffer;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

int histogram_bucket(double value) {
  if (!std::isfinite(value)) return -1;
  if (value < kHistogramLowest) return 0;
  // kLowest·2^(j-1) <= v < kLowest·2^j  =>  j-1 = floor(log2(v / kLowest)).
  // The quotient of a boundary by kLowest is an exact power of two, so
  // ilogb classifies boundaries exactly.
  const int exponent = std::ilogb(value / kHistogramLowest);
  const int bucket = exponent + 1;
  return std::min(bucket, kHistogramBuckets + 1);
}

double histogram_bucket_lower(int bucket) {
  if (bucket <= 0) return -std::numeric_limits<double>::infinity();
  return std::ldexp(kHistogramLowest,
                    std::min(bucket, kHistogramBuckets + 1) - 1);
}

void HistogramData::observe(double value) {
  const int bucket = histogram_bucket(value);
  if (bucket < 0) {
    ++non_finite;
    return;
  }
  ++buckets[static_cast<std::size_t>(bucket)];
  ++count;
  sum += value;
  min = std::min(min, value);
  max = std::max(max, value);
}

void HistogramData::merge(const HistogramData& other) {
  for (std::size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
  count += other.count;
  non_finite += other.non_finite;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
}

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Shard& MetricsRegistry::shard_for_thread() {
  return shards_[thread_shard_index(kShards)];
}

MetricsRegistry::Metric& MetricsRegistry::slot(Shard& shard,
                                               std::string_view name,
                                               MetricKind kind) {
  const auto it = shard.metrics.find(name);
  if (it != shard.metrics.end()) return it->second;
  Metric metric;
  metric.kind = kind;
  if (kind == MetricKind::kHistogram) {
    metric.histogram = std::make_unique<HistogramData>();
  }
  return shard.metrics.emplace(std::string(name), std::move(metric))
      .first->second;
}

void MetricsRegistry::counter_add(std::string_view name, std::int64_t delta) {
  Shard& shard = shard_for_thread();
  const std::lock_guard<std::mutex> lock(shard.mu);
  slot(shard, name, MetricKind::kCounter).counter += delta;
}

void MetricsRegistry::gauge_set(std::string_view name, double value) {
  const std::uint64_t seq =
      gauge_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  Shard& shard = shard_for_thread();
  const std::lock_guard<std::mutex> lock(shard.mu);
  Metric& metric = slot(shard, name, MetricKind::kGauge);
  metric.gauge = value;
  metric.gauge_seq = seq;
}

void MetricsRegistry::observe(std::string_view name, double value) {
  Shard& shard = shard_for_thread();
  const std::lock_guard<std::mutex> lock(shard.mu);
  Metric& metric = slot(shard, name, MetricKind::kHistogram);
  if (metric.histogram) metric.histogram->observe(value);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  // Merge shards in index order into a name-sorted map. Counters and bucket
  // counts are sums (order-independent); gauges keep the write with the
  // highest global sequence number.
  std::map<std::string, SnapshotEntry> merged;
  std::map<std::string, std::uint64_t> gauge_seqs;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, metric] : shard.metrics) {
      auto [it, inserted] = merged.try_emplace(name);
      SnapshotEntry& entry = it->second;
      if (inserted) {
        entry.name = name;
        entry.kind = metric.kind;
      }
      switch (metric.kind) {
        case MetricKind::kCounter:
          entry.counter += metric.counter;
          break;
        case MetricKind::kGauge:
          if (metric.gauge_seq >= gauge_seqs[name]) {
            gauge_seqs[name] = metric.gauge_seq;
            entry.gauge = metric.gauge;
          }
          break;
        case MetricKind::kHistogram:
          if (metric.histogram) entry.histogram.merge(*metric.histogram);
          break;
      }
    }
  }
  MetricsSnapshot snapshot;
  snapshot.entries.reserve(merged.size());
  for (auto& [name, entry] : merged) snapshot.entries.push_back(std::move(entry));
  return snapshot;
}

const SnapshotEntry* MetricsSnapshot::find(std::string_view name) const {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), name,
      [](const SnapshotEntry& entry, std::string_view key) {
        return entry.name < key;
      });
  if (it == entries.end() || it->name != name) return nullptr;
  return &*it;
}

util::Table MetricsSnapshot::to_table() const {
  util::Table table(
      {"metric", "kind", "count", "value", "sum", "min", "max", "mean"});
  for (const SnapshotEntry& entry : entries) {
    table.row().cell(entry.name).cell(metric_kind_name(entry.kind));
    switch (entry.kind) {
      case MetricKind::kCounter:
        table.cell("").integer(entry.counter).cell("").cell("").cell("").cell(
            "");
        break;
      case MetricKind::kGauge:
        table.cell("").num(entry.gauge, 6).cell("").cell("").cell("").cell("");
        break;
      case MetricKind::kHistogram: {
        const HistogramData& h = entry.histogram;
        table.integer(h.count).cell("");
        if (h.count > 0) {
          table.num(h.sum, 6).num(h.min, 6).num(h.max, 6).num(h.mean(), 6);
        } else {
          table.cell("").cell("").cell("").cell("");
        }
        break;
      }
    }
  }
  return table;
}

std::string MetricsSnapshot::to_csv() const { return to_table().to_csv(); }

void MetricsSnapshot::write_csv(const std::string& path) const {
  to_table().write_csv(path);
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream out;
  out << "{\"metrics\":[";
  bool first_entry = true;
  for (const SnapshotEntry& entry : entries) {
    if (!first_entry) out << ',';
    first_entry = false;
    out << "{\"name\":\"" << json_escape(entry.name) << "\",\"kind\":\""
        << metric_kind_name(entry.kind) << '"';
    switch (entry.kind) {
      case MetricKind::kCounter:
        out << ",\"value\":" << entry.counter;
        break;
      case MetricKind::kGauge:
        out << ",\"value\":" << format_double(entry.gauge);
        break;
      case MetricKind::kHistogram: {
        const HistogramData& h = entry.histogram;
        out << ",\"count\":" << h.count << ",\"non_finite\":" << h.non_finite;
        if (h.count > 0) {
          out << ",\"sum\":" << format_double(h.sum)
              << ",\"min\":" << format_double(h.min)
              << ",\"max\":" << format_double(h.max)
              << ",\"mean\":" << format_double(h.mean());
        }
        // Cumulative buckets (Prometheus "le" semantics); empty trailing
        // buckets are elided but the cumulative count is preserved.
        out << ",\"buckets\":[";
        std::uint64_t cumulative = 0;
        bool first_bucket = true;
        for (std::size_t j = 0; j < h.buckets.size(); ++j) {
          cumulative += h.buckets[j];
          if (h.buckets[j] == 0) continue;
          if (!first_bucket) out << ',';
          first_bucket = false;
          const double upper =
              j + 1 < h.buckets.size()
                  ? histogram_bucket_lower(static_cast<int>(j) + 1)
                  : std::numeric_limits<double>::infinity();
          out << "{\"le\":" << format_double(upper)
              << ",\"count\":" << cumulative << '}';
        }
        out << ']';
        break;
      }
    }
    out << '}';
  }
  out << "]}";
  return out.str();
}

void MetricsSnapshot::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("MetricsSnapshot: cannot open " + path);
  }
  out << to_json() << '\n';
  if (!out) {
    throw std::runtime_error("MetricsSnapshot: failed writing " + path);
  }
}

}  // namespace socl::obs
