// Structured trace buffer: completed spans with phase labels, exported in
// the Chrome `trace_event` JSON format so a run opens directly in
// chrome://tracing or https://ui.perfetto.dev (DESIGN.md §4e has the span
// taxonomy; EXPERIMENTS.md walks through reading a trace).
//
// Recording is a single short mutex-guarded append of a POD record — span
// names are string literals owned by the instrumentation sites, so the
// steady state allocates only when the vector grows. Spans are recorded on
// completion (`ph: "X"` complete events), which keeps the writer trivially
// crash-consistent: the buffer only ever holds well-formed events.
#pragma once

#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/sink.h"

namespace socl::obs {

/// One completed span; times are microseconds relative to the owning
/// sink's time base.
struct TraceEvent {
  Phase phase = Phase::kOther;
  const char* name = "";
  double start_us = 0.0;
  double dur_us = 0.0;
  int tid = 0;  ///< dense per-buffer thread id (0 = first recording thread)
};

class TraceBuffer {
 public:
  /// Appends a completed span, stamping the calling thread's dense id.
  void record(Phase phase, const char* name, double start_us, double dur_us);

  std::size_t size() const;
  /// Copy of the recorded events (insertion order).
  std::vector<TraceEvent> events() const;

  /// Chrome trace_event JSON: an object with a `traceEvents` array of
  /// complete (`"ph":"X"`) events; `cat` carries the phase label, `ts`/`dur`
  /// are microseconds. Loads directly in chrome://tracing and Perfetto.
  std::string to_chrome_json() const;
  /// Writes `to_chrome_json()` to `path`; throws std::runtime_error on I/O
  /// failure.
  void write_chrome_json(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::vector<std::thread::id> thread_ids_;  ///< index = dense tid
};

}  // namespace socl::obs
