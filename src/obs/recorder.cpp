#include "obs/recorder.h"

namespace socl::obs {

const char* Recorder::span_metric_name(Phase phase) {
  switch (phase) {
    case Phase::kPartition: return "socl.span.partition_us";
    case Phase::kFuzzyAhp: return "socl.span.fuzzy_ahp_us";
    case Phase::kPreprovision: return "socl.span.preprovision_us";
    case Phase::kCombination: return "socl.span.combination_us";
    case Phase::kRouting: return "socl.span.routing_us";
    case Phase::kServerless: return "socl.span.serverless_us";
    case Phase::kSim: return "socl.span.sim_us";
    case Phase::kOther: return "socl.span.other_us";
  }
  return "socl.span.other_us";
}

}  // namespace socl::obs
