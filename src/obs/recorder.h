// Recorder: the standard ObsSink — spans go to a Chrome-trace buffer,
// metric updates to the sharded registry, and every completed span is also
// folded into an automatic per-phase duration histogram
// (`socl.span.<phase>_us`, docs/METRICS.md). Attach one to
// `core::SoCLParams::sink` (or the serverless / slot-sim configs) and write
// both artefacts at the end of a run:
//
//   socl::obs::Recorder recorder;
//   params.sink = &recorder;                 // instrument the pipeline
//   ... run ...
//   recorder.trace().write_chrome_json("trace.json");
//   recorder.metrics().snapshot().write_csv("metrics.csv");
//
// `socl_cli --trace-out/--metrics-out` is exactly this wiring.
#pragma once

#include <chrono>

#include "obs/metrics.h"
#include "obs/sink.h"
#include "obs/trace.h"

namespace socl::obs {

class Recorder final : public ObsSink {
 public:
  Recorder() : base_(std::chrono::steady_clock::now()) {}

  double now_us() const override {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - base_)
        .count();
  }

  void record_span(Phase phase, const char* name, double start_us,
                   double dur_us) override {
    trace_.record(phase, name, start_us, dur_us);
    metrics_.observe(span_metric_name(phase), dur_us);
  }

  void add_counter(const char* name, std::int64_t delta) override {
    metrics_.counter_add(name, delta);
  }

  void set_gauge(const char* name, double value) override {
    metrics_.gauge_set(name, value);
  }

  void observe(const char* name, double value) override {
    metrics_.observe(name, value);
  }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  TraceBuffer& trace() { return trace_; }
  const TraceBuffer& trace() const { return trace_; }

  /// `socl.span.<phase>_us` — the automatic phase-duration histogram key.
  static const char* span_metric_name(Phase phase);

 private:
  std::chrono::steady_clock::time_point base_;
  MetricsRegistry metrics_;
  TraceBuffer trace_;
};

}  // namespace socl::obs
