#!/usr/bin/env python3
"""Check that relative links and file references in markdown docs resolve.

Stdlib-only, so it runs anywhere (CI docs job, pre-commit). Two checks:

1. Inline markdown links `[text](target)`: external schemes and pure
   anchors are skipped; everything else must exist relative to the file
   containing the link (an optional #anchor suffix is stripped).
2. Backtick path references like `docs/METRICS.md` or `src/obs/` that look
   like repo paths (start with a known top-level directory and contain a
   slash) must exist relative to the repo root — these are how the design
   docs cross-reference code.

Exit status is the number of broken references (0 = clean).
"""

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

INLINE_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
BACKTICK_PATH = re.compile(r"`([A-Za-z0-9_.]+/[A-Za-z0-9_./-]*)`")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")
# Top-level directories whose backtick mentions are treated as paths.
PATH_ROOTS = ("src", "docs", "tests", "bench", "examples", "scripts")


def skipped(part: str) -> bool:
    # Any build tree (build, build-asan, build-ubsan, ...) and dot-dirs.
    return part.startswith("build") or part.startswith(".")


def markdown_files():
    """Every tracked-looking *.md under the repo root, recursively — the
    top-level docs plus docs/, examples/, tests/, and any future subtree."""
    for path in sorted(REPO_ROOT.rglob("*.md")):
        if any(skipped(part) for part in path.relative_to(REPO_ROOT).parts):
            continue
        yield path


def check_file(md_path: Path):
    errors = []
    text = md_path.read_text(encoding="utf-8")
    rel = md_path.relative_to(REPO_ROOT)

    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in INLINE_LINK.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            target_path = target.split("#", 1)[0]
            if not target_path:
                continue
            resolved = (md_path.parent / target_path).resolve()
            if not resolved.exists():
                errors.append(f"{rel}:{lineno}: broken link -> {target}")

        for match in BACKTICK_PATH.finditer(line):
            target = match.group(1)
            root = target.split("/", 1)[0]
            if root not in PATH_ROOTS:
                continue
            # `src/core/socl.{h,cpp}`-style brace groups expand to variants.
            variants = [target]
            brace = re.match(r"(.*)\{([^}]*)\}(.*)", target)
            if brace:
                variants = [
                    brace.group(1) + alt + brace.group(3)
                    for alt in brace.group(2).split(",")
                ]
            for variant in variants:
                # A trailing `*` means "this prefix", as in `workload/trace.*`.
                candidate = REPO_ROOT / variant.rstrip("*")
                if not candidate.exists() and not list(
                    candidate.parent.glob(candidate.name + "*")
                ):
                    errors.append(
                        f"{rel}:{lineno}: dangling path reference -> {variant}"
                    )
    return errors


def main():
    all_errors = []
    count = 0
    for md_path in markdown_files():
        count += 1
        all_errors.extend(check_file(md_path))
    for error in all_errors:
        print(error)
    print(f"checked {count} markdown files: "
          f"{'OK' if not all_errors else f'{len(all_errors)} broken'}")
    return min(len(all_errors), 125)


if __name__ == "__main__":
    sys.exit(main())
