file(REMOVE_RECURSE
  "CMakeFiles/test_simplex.dir/test_simplex.cpp.o"
  "CMakeFiles/test_simplex.dir/test_simplex.cpp.o.d"
  "test_simplex"
  "test_simplex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simplex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
