# Empty dependencies file for test_catalogs.
# This may be replaced when dependencies are built.
