file(REMOVE_RECURSE
  "CMakeFiles/test_catalogs.dir/test_catalogs.cpp.o"
  "CMakeFiles/test_catalogs.dir/test_catalogs.cpp.o.d"
  "test_catalogs"
  "test_catalogs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_catalogs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
