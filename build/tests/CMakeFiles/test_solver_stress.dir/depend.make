# Empty dependencies file for test_solver_stress.
# This may be replaced when dependencies are built.
