file(REMOVE_RECURSE
  "CMakeFiles/test_solver_stress.dir/test_solver_stress.cpp.o"
  "CMakeFiles/test_solver_stress.dir/test_solver_stress.cpp.o.d"
  "test_solver_stress"
  "test_solver_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
