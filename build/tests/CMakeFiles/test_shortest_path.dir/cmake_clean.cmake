file(REMOVE_RECURSE
  "CMakeFiles/test_shortest_path.dir/test_shortest_path.cpp.o"
  "CMakeFiles/test_shortest_path.dir/test_shortest_path.cpp.o.d"
  "test_shortest_path"
  "test_shortest_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shortest_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
