# Empty compiler generated dependencies file for test_shortest_path.
# This may be replaced when dependencies are built.
