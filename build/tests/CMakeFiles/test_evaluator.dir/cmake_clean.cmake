file(REMOVE_RECURSE
  "CMakeFiles/test_evaluator.dir/test_evaluator.cpp.o"
  "CMakeFiles/test_evaluator.dir/test_evaluator.cpp.o.d"
  "test_evaluator"
  "test_evaluator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_evaluator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
