file(REMOVE_RECURSE
  "CMakeFiles/test_behavior.dir/test_behavior.cpp.o"
  "CMakeFiles/test_behavior.dir/test_behavior.cpp.o.d"
  "test_behavior"
  "test_behavior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_behavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
