# Empty compiler generated dependencies file for test_virtual_link.
# This may be replaced when dependencies are built.
