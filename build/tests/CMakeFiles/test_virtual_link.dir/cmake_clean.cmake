file(REMOVE_RECURSE
  "CMakeFiles/test_virtual_link.dir/test_virtual_link.cpp.o"
  "CMakeFiles/test_virtual_link.dir/test_virtual_link.cpp.o.d"
  "test_virtual_link"
  "test_virtual_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_virtual_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
