file(REMOVE_RECURSE
  "CMakeFiles/test_topology_families.dir/test_topology_families.cpp.o"
  "CMakeFiles/test_topology_families.dir/test_topology_families.cpp.o.d"
  "test_topology_families"
  "test_topology_families.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topology_families.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
