# Empty dependencies file for test_topology_families.
# This may be replaced when dependencies are built.
