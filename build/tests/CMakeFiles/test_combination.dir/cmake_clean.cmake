file(REMOVE_RECURSE
  "CMakeFiles/test_combination.dir/test_combination.cpp.o"
  "CMakeFiles/test_combination.dir/test_combination.cpp.o.d"
  "test_combination"
  "test_combination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_combination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
