# Empty dependencies file for test_combination.
# This may be replaced when dependencies are built.
