# Empty compiler generated dependencies file for test_regressions.
# This may be replaced when dependencies are built.
