file(REMOVE_RECURSE
  "CMakeFiles/test_regressions.dir/test_regressions.cpp.o"
  "CMakeFiles/test_regressions.dir/test_regressions.cpp.o.d"
  "test_regressions"
  "test_regressions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regressions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
