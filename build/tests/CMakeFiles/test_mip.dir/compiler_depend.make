# Empty compiler generated dependencies file for test_mip.
# This may be replaced when dependencies are built.
