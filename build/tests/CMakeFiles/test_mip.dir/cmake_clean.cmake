file(REMOVE_RECURSE
  "CMakeFiles/test_mip.dir/test_mip.cpp.o"
  "CMakeFiles/test_mip.dir/test_mip.cpp.o.d"
  "test_mip"
  "test_mip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
