# Empty dependencies file for test_presolve.
# This may be replaced when dependencies are built.
