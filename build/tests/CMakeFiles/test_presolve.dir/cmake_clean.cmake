file(REMOVE_RECURSE
  "CMakeFiles/test_presolve.dir/test_presolve.cpp.o"
  "CMakeFiles/test_presolve.dir/test_presolve.cpp.o.d"
  "test_presolve"
  "test_presolve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_presolve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
