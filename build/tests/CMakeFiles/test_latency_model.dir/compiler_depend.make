# Empty compiler generated dependencies file for test_latency_model.
# This may be replaced when dependencies are built.
