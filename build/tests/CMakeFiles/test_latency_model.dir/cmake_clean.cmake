file(REMOVE_RECURSE
  "CMakeFiles/test_latency_model.dir/test_latency_model.cpp.o"
  "CMakeFiles/test_latency_model.dir/test_latency_model.cpp.o.d"
  "test_latency_model"
  "test_latency_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_latency_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
