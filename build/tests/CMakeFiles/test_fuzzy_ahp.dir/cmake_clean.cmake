file(REMOVE_RECURSE
  "CMakeFiles/test_fuzzy_ahp.dir/test_fuzzy_ahp.cpp.o"
  "CMakeFiles/test_fuzzy_ahp.dir/test_fuzzy_ahp.cpp.o.d"
  "test_fuzzy_ahp"
  "test_fuzzy_ahp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzzy_ahp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
