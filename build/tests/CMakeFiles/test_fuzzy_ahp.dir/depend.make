# Empty dependencies file for test_fuzzy_ahp.
# This may be replaced when dependencies are built.
