file(REMOVE_RECURSE
  "CMakeFiles/test_socl.dir/test_socl.cpp.o"
  "CMakeFiles/test_socl.dir/test_socl.cpp.o.d"
  "test_socl"
  "test_socl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_socl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
