# Empty compiler generated dependencies file for test_socl.
# This may be replaced when dependencies are built.
