# Empty compiler generated dependencies file for test_preprovision.
# This may be replaced when dependencies are built.
