file(REMOVE_RECURSE
  "CMakeFiles/test_preprovision.dir/test_preprovision.cpp.o"
  "CMakeFiles/test_preprovision.dir/test_preprovision.cpp.o.d"
  "test_preprovision"
  "test_preprovision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preprovision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
