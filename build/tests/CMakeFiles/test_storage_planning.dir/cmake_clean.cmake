file(REMOVE_RECURSE
  "CMakeFiles/test_storage_planning.dir/test_storage_planning.cpp.o"
  "CMakeFiles/test_storage_planning.dir/test_storage_planning.cpp.o.d"
  "test_storage_planning"
  "test_storage_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_storage_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
