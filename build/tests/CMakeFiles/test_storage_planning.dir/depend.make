# Empty dependencies file for test_storage_planning.
# This may be replaced when dependencies are built.
