# Empty dependencies file for bench_resilience.
# This may be replaced when dependencies are built.
