file(REMOVE_RECURSE
  "CMakeFiles/bench_resilience.dir/bench_resilience.cpp.o"
  "CMakeFiles/bench_resilience.dir/bench_resilience.cpp.o.d"
  "bench_resilience"
  "bench_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
