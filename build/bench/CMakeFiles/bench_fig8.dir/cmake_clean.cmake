file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8.dir/bench_fig8.cpp.o"
  "CMakeFiles/bench_fig8.dir/bench_fig8.cpp.o.d"
  "bench_fig8"
  "bench_fig8.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
