file(REMOVE_RECURSE
  "CMakeFiles/bench_online.dir/bench_online.cpp.o"
  "CMakeFiles/bench_online.dir/bench_online.cpp.o.d"
  "bench_online"
  "bench_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
