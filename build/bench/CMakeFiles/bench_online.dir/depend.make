# Empty dependencies file for bench_online.
# This may be replaced when dependencies are built.
