
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/testbed_trace.cpp" "examples/CMakeFiles/testbed_trace.dir/testbed_trace.cpp.o" "gcc" "examples/CMakeFiles/testbed_trace.dir/testbed_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/socl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/socl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/socl_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/socl_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/socl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/socl_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/socl_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/socl_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
