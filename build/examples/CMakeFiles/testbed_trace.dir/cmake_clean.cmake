file(REMOVE_RECURSE
  "CMakeFiles/testbed_trace.dir/testbed_trace.cpp.o"
  "CMakeFiles/testbed_trace.dir/testbed_trace.cpp.o.d"
  "testbed_trace"
  "testbed_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testbed_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
