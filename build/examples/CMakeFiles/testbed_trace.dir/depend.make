# Empty dependencies file for testbed_trace.
# This may be replaced when dependencies are built.
