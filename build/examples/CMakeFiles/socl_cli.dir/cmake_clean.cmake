file(REMOVE_RECURSE
  "CMakeFiles/socl_cli.dir/socl_cli.cpp.o"
  "CMakeFiles/socl_cli.dir/socl_cli.cpp.o.d"
  "socl_cli"
  "socl_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socl_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
