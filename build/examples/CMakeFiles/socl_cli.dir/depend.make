# Empty dependencies file for socl_cli.
# This may be replaced when dependencies are built.
