file(REMOVE_RECURSE
  "CMakeFiles/capacity_planning.dir/capacity_planning.cpp.o"
  "CMakeFiles/capacity_planning.dir/capacity_planning.cpp.o.d"
  "capacity_planning"
  "capacity_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
