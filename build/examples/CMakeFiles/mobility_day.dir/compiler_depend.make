# Empty compiler generated dependencies file for mobility_day.
# This may be replaced when dependencies are built.
