file(REMOVE_RECURSE
  "CMakeFiles/mobility_day.dir/mobility_day.cpp.o"
  "CMakeFiles/mobility_day.dir/mobility_day.cpp.o.d"
  "mobility_day"
  "mobility_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
