# Empty compiler generated dependencies file for socl_workload.
# This may be replaced when dependencies are built.
