file(REMOVE_RECURSE
  "libsocl_workload.a"
)
