
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/behavior.cpp" "src/workload/CMakeFiles/socl_workload.dir/behavior.cpp.o" "gcc" "src/workload/CMakeFiles/socl_workload.dir/behavior.cpp.o.d"
  "/root/repo/src/workload/catalog.cpp" "src/workload/CMakeFiles/socl_workload.dir/catalog.cpp.o" "gcc" "src/workload/CMakeFiles/socl_workload.dir/catalog.cpp.o.d"
  "/root/repo/src/workload/microservice.cpp" "src/workload/CMakeFiles/socl_workload.dir/microservice.cpp.o" "gcc" "src/workload/CMakeFiles/socl_workload.dir/microservice.cpp.o.d"
  "/root/repo/src/workload/mobility.cpp" "src/workload/CMakeFiles/socl_workload.dir/mobility.cpp.o" "gcc" "src/workload/CMakeFiles/socl_workload.dir/mobility.cpp.o.d"
  "/root/repo/src/workload/request_gen.cpp" "src/workload/CMakeFiles/socl_workload.dir/request_gen.cpp.o" "gcc" "src/workload/CMakeFiles/socl_workload.dir/request_gen.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/workload/CMakeFiles/socl_workload.dir/trace.cpp.o" "gcc" "src/workload/CMakeFiles/socl_workload.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/socl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/socl_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
