file(REMOVE_RECURSE
  "CMakeFiles/socl_workload.dir/behavior.cpp.o"
  "CMakeFiles/socl_workload.dir/behavior.cpp.o.d"
  "CMakeFiles/socl_workload.dir/catalog.cpp.o"
  "CMakeFiles/socl_workload.dir/catalog.cpp.o.d"
  "CMakeFiles/socl_workload.dir/microservice.cpp.o"
  "CMakeFiles/socl_workload.dir/microservice.cpp.o.d"
  "CMakeFiles/socl_workload.dir/mobility.cpp.o"
  "CMakeFiles/socl_workload.dir/mobility.cpp.o.d"
  "CMakeFiles/socl_workload.dir/request_gen.cpp.o"
  "CMakeFiles/socl_workload.dir/request_gen.cpp.o.d"
  "CMakeFiles/socl_workload.dir/trace.cpp.o"
  "CMakeFiles/socl_workload.dir/trace.cpp.o.d"
  "libsocl_workload.a"
  "libsocl_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socl_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
