file(REMOVE_RECURSE
  "libsocl_util.a"
)
