file(REMOVE_RECURSE
  "CMakeFiles/socl_util.dir/log.cpp.o"
  "CMakeFiles/socl_util.dir/log.cpp.o.d"
  "CMakeFiles/socl_util.dir/rng.cpp.o"
  "CMakeFiles/socl_util.dir/rng.cpp.o.d"
  "CMakeFiles/socl_util.dir/stats.cpp.o"
  "CMakeFiles/socl_util.dir/stats.cpp.o.d"
  "CMakeFiles/socl_util.dir/table.cpp.o"
  "CMakeFiles/socl_util.dir/table.cpp.o.d"
  "CMakeFiles/socl_util.dir/thread_pool.cpp.o"
  "CMakeFiles/socl_util.dir/thread_pool.cpp.o.d"
  "libsocl_util.a"
  "libsocl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
