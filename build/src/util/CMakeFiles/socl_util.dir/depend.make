# Empty dependencies file for socl_util.
# This may be replaced when dependencies are built.
