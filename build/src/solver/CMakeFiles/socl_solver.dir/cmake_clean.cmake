file(REMOVE_RECURSE
  "CMakeFiles/socl_solver.dir/mip.cpp.o"
  "CMakeFiles/socl_solver.dir/mip.cpp.o.d"
  "CMakeFiles/socl_solver.dir/model.cpp.o"
  "CMakeFiles/socl_solver.dir/model.cpp.o.d"
  "CMakeFiles/socl_solver.dir/presolve.cpp.o"
  "CMakeFiles/socl_solver.dir/presolve.cpp.o.d"
  "CMakeFiles/socl_solver.dir/simplex.cpp.o"
  "CMakeFiles/socl_solver.dir/simplex.cpp.o.d"
  "libsocl_solver.a"
  "libsocl_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socl_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
