file(REMOVE_RECURSE
  "libsocl_solver.a"
)
