# Empty compiler generated dependencies file for socl_solver.
# This may be replaced when dependencies are built.
