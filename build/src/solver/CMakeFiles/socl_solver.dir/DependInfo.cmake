
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/mip.cpp" "src/solver/CMakeFiles/socl_solver.dir/mip.cpp.o" "gcc" "src/solver/CMakeFiles/socl_solver.dir/mip.cpp.o.d"
  "/root/repo/src/solver/model.cpp" "src/solver/CMakeFiles/socl_solver.dir/model.cpp.o" "gcc" "src/solver/CMakeFiles/socl_solver.dir/model.cpp.o.d"
  "/root/repo/src/solver/presolve.cpp" "src/solver/CMakeFiles/socl_solver.dir/presolve.cpp.o" "gcc" "src/solver/CMakeFiles/socl_solver.dir/presolve.cpp.o.d"
  "/root/repo/src/solver/simplex.cpp" "src/solver/CMakeFiles/socl_solver.dir/simplex.cpp.o" "gcc" "src/solver/CMakeFiles/socl_solver.dir/simplex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/socl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
