# Empty compiler generated dependencies file for socl_ilp.
# This may be replaced when dependencies are built.
