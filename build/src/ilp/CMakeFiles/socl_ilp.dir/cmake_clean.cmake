file(REMOVE_RECURSE
  "CMakeFiles/socl_ilp.dir/exact_solver.cpp.o"
  "CMakeFiles/socl_ilp.dir/exact_solver.cpp.o.d"
  "CMakeFiles/socl_ilp.dir/socl_ilp.cpp.o"
  "CMakeFiles/socl_ilp.dir/socl_ilp.cpp.o.d"
  "libsocl_ilp.a"
  "libsocl_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socl_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
