file(REMOVE_RECURSE
  "libsocl_ilp.a"
)
