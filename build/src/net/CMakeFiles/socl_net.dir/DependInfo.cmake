
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/failures.cpp" "src/net/CMakeFiles/socl_net.dir/failures.cpp.o" "gcc" "src/net/CMakeFiles/socl_net.dir/failures.cpp.o.d"
  "/root/repo/src/net/graph.cpp" "src/net/CMakeFiles/socl_net.dir/graph.cpp.o" "gcc" "src/net/CMakeFiles/socl_net.dir/graph.cpp.o.d"
  "/root/repo/src/net/shortest_path.cpp" "src/net/CMakeFiles/socl_net.dir/shortest_path.cpp.o" "gcc" "src/net/CMakeFiles/socl_net.dir/shortest_path.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/socl_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/socl_net.dir/topology.cpp.o.d"
  "/root/repo/src/net/topology_families.cpp" "src/net/CMakeFiles/socl_net.dir/topology_families.cpp.o" "gcc" "src/net/CMakeFiles/socl_net.dir/topology_families.cpp.o.d"
  "/root/repo/src/net/virtual_link.cpp" "src/net/CMakeFiles/socl_net.dir/virtual_link.cpp.o" "gcc" "src/net/CMakeFiles/socl_net.dir/virtual_link.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/socl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
