file(REMOVE_RECURSE
  "CMakeFiles/socl_net.dir/failures.cpp.o"
  "CMakeFiles/socl_net.dir/failures.cpp.o.d"
  "CMakeFiles/socl_net.dir/graph.cpp.o"
  "CMakeFiles/socl_net.dir/graph.cpp.o.d"
  "CMakeFiles/socl_net.dir/shortest_path.cpp.o"
  "CMakeFiles/socl_net.dir/shortest_path.cpp.o.d"
  "CMakeFiles/socl_net.dir/topology.cpp.o"
  "CMakeFiles/socl_net.dir/topology.cpp.o.d"
  "CMakeFiles/socl_net.dir/topology_families.cpp.o"
  "CMakeFiles/socl_net.dir/topology_families.cpp.o.d"
  "CMakeFiles/socl_net.dir/virtual_link.cpp.o"
  "CMakeFiles/socl_net.dir/virtual_link.cpp.o.d"
  "libsocl_net.a"
  "libsocl_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socl_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
