# Empty dependencies file for socl_net.
# This may be replaced when dependencies are built.
