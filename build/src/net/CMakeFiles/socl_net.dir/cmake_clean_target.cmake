file(REMOVE_RECURSE
  "libsocl_net.a"
)
