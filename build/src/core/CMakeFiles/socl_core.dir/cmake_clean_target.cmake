file(REMOVE_RECURSE
  "libsocl_core.a"
)
