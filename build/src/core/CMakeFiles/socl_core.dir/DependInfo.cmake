
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/combination.cpp" "src/core/CMakeFiles/socl_core.dir/combination.cpp.o" "gcc" "src/core/CMakeFiles/socl_core.dir/combination.cpp.o.d"
  "/root/repo/src/core/evaluator.cpp" "src/core/CMakeFiles/socl_core.dir/evaluator.cpp.o" "gcc" "src/core/CMakeFiles/socl_core.dir/evaluator.cpp.o.d"
  "/root/repo/src/core/fuzzy_ahp.cpp" "src/core/CMakeFiles/socl_core.dir/fuzzy_ahp.cpp.o" "gcc" "src/core/CMakeFiles/socl_core.dir/fuzzy_ahp.cpp.o.d"
  "/root/repo/src/core/online.cpp" "src/core/CMakeFiles/socl_core.dir/online.cpp.o" "gcc" "src/core/CMakeFiles/socl_core.dir/online.cpp.o.d"
  "/root/repo/src/core/partition.cpp" "src/core/CMakeFiles/socl_core.dir/partition.cpp.o" "gcc" "src/core/CMakeFiles/socl_core.dir/partition.cpp.o.d"
  "/root/repo/src/core/placement.cpp" "src/core/CMakeFiles/socl_core.dir/placement.cpp.o" "gcc" "src/core/CMakeFiles/socl_core.dir/placement.cpp.o.d"
  "/root/repo/src/core/preprovision.cpp" "src/core/CMakeFiles/socl_core.dir/preprovision.cpp.o" "gcc" "src/core/CMakeFiles/socl_core.dir/preprovision.cpp.o.d"
  "/root/repo/src/core/routing.cpp" "src/core/CMakeFiles/socl_core.dir/routing.cpp.o" "gcc" "src/core/CMakeFiles/socl_core.dir/routing.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/core/CMakeFiles/socl_core.dir/scenario.cpp.o" "gcc" "src/core/CMakeFiles/socl_core.dir/scenario.cpp.o.d"
  "/root/repo/src/core/socl.cpp" "src/core/CMakeFiles/socl_core.dir/socl.cpp.o" "gcc" "src/core/CMakeFiles/socl_core.dir/socl.cpp.o.d"
  "/root/repo/src/core/storage_planning.cpp" "src/core/CMakeFiles/socl_core.dir/storage_planning.cpp.o" "gcc" "src/core/CMakeFiles/socl_core.dir/storage_planning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/socl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/socl_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/socl_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
