# Empty dependencies file for socl_core.
# This may be replaced when dependencies are built.
