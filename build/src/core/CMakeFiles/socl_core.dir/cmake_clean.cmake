file(REMOVE_RECURSE
  "CMakeFiles/socl_core.dir/combination.cpp.o"
  "CMakeFiles/socl_core.dir/combination.cpp.o.d"
  "CMakeFiles/socl_core.dir/evaluator.cpp.o"
  "CMakeFiles/socl_core.dir/evaluator.cpp.o.d"
  "CMakeFiles/socl_core.dir/fuzzy_ahp.cpp.o"
  "CMakeFiles/socl_core.dir/fuzzy_ahp.cpp.o.d"
  "CMakeFiles/socl_core.dir/online.cpp.o"
  "CMakeFiles/socl_core.dir/online.cpp.o.d"
  "CMakeFiles/socl_core.dir/partition.cpp.o"
  "CMakeFiles/socl_core.dir/partition.cpp.o.d"
  "CMakeFiles/socl_core.dir/placement.cpp.o"
  "CMakeFiles/socl_core.dir/placement.cpp.o.d"
  "CMakeFiles/socl_core.dir/preprovision.cpp.o"
  "CMakeFiles/socl_core.dir/preprovision.cpp.o.d"
  "CMakeFiles/socl_core.dir/routing.cpp.o"
  "CMakeFiles/socl_core.dir/routing.cpp.o.d"
  "CMakeFiles/socl_core.dir/scenario.cpp.o"
  "CMakeFiles/socl_core.dir/scenario.cpp.o.d"
  "CMakeFiles/socl_core.dir/socl.cpp.o"
  "CMakeFiles/socl_core.dir/socl.cpp.o.d"
  "CMakeFiles/socl_core.dir/storage_planning.cpp.o"
  "CMakeFiles/socl_core.dir/storage_planning.cpp.o.d"
  "libsocl_core.a"
  "libsocl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
