file(REMOVE_RECURSE
  "CMakeFiles/socl_baselines.dir/gcog.cpp.o"
  "CMakeFiles/socl_baselines.dir/gcog.cpp.o.d"
  "CMakeFiles/socl_baselines.dir/jdr.cpp.o"
  "CMakeFiles/socl_baselines.dir/jdr.cpp.o.d"
  "CMakeFiles/socl_baselines.dir/random_provision.cpp.o"
  "CMakeFiles/socl_baselines.dir/random_provision.cpp.o.d"
  "libsocl_baselines.a"
  "libsocl_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socl_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
