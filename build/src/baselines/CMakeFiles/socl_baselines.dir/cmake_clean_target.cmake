file(REMOVE_RECURSE
  "libsocl_baselines.a"
)
