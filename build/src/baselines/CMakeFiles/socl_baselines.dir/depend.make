# Empty dependencies file for socl_baselines.
# This may be replaced when dependencies are built.
