# Empty dependencies file for socl_sim.
# This may be replaced when dependencies are built.
