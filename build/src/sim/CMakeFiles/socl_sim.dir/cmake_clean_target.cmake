file(REMOVE_RECURSE
  "libsocl_sim.a"
)
