file(REMOVE_RECURSE
  "CMakeFiles/socl_sim.dir/slot_sim.cpp.o"
  "CMakeFiles/socl_sim.dir/slot_sim.cpp.o.d"
  "CMakeFiles/socl_sim.dir/testbed.cpp.o"
  "CMakeFiles/socl_sim.dir/testbed.cpp.o.d"
  "libsocl_sim.a"
  "libsocl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
